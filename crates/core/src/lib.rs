//! The geoblocking measurement pipeline — the paper's contribution.
//!
//! Everything here consumes only HTTP responses and DNS answers; ground
//! truth is never read. The stages mirror §4–§5:
//!
//! 1. [`classify`] — turn a fetched chain into a compact [`observation`]
//!    (status, body length, matched fingerprint, error kind);
//! 2. [`outliers`] — the page-length heuristic: pick each domain's
//!    representative length over the top blocking countries and extract
//!    samples ≥30% shorter;
//! 3. [`discovery`] — TF-IDF + single-link clustering over outlier pages;
//!    clusters are where the 14 block-page fingerprints came from;
//! 4. [`confirm`] — the 3/20/80% confirmation methodology for explicit
//!    geoblockers;
//! 5. [`consistency`] — the consistency-score analysis that isolates
//!    geoblocking among ambiguous blockers (Akamai, Incapsula);
//! 6. [`population`] — CDN customer identification: response headers
//!    anywhere in the redirect chain, the Akamai `Pragma` poke, NS
//!    delegation, and the AppEngine netblock walk;
//! 7. [`session`] — [`StudySession`], the unified study driver: one
//!    builder carrying engine, config, observers, and a [`sampling`]
//!    policy through every pass, streaming lazily-planned targets
//!    ([`plan`]) through the probe pipeline and classifying-and-dropping
//!    each completion as it lands ([`study`] keeps the shared
//!    config/accumulator types; [`sampling`] decides who gets probed
//!    next and tracks the probe-budget ledger);
//! 8. [`exploration`] — the §3 VPS exploration;
//! 9. [`timeouts`] and [`regional`] — the §7.3 future-work analyses
//!    (timeout-based blocking, sub-country granularity).

pub mod classify;
pub mod confirm;
pub mod consistency;
pub mod diffing;
pub mod discovery;
pub mod exploration;
pub mod observation;
pub mod outliers;
pub mod plan;
pub mod population;
pub mod regional;
pub mod sampling;
pub mod session;
pub mod study;
pub mod timeouts;

pub use classify::classify_chain;
pub use confirm::{ConfirmConfig, GeoblockVerdict};
pub use consistency::{consistency_scores, ConsistencyReport};
pub use diffing::{diff_studies, StudyDiff};
pub use observation::{BodyArchive, ErrKind, Obs, SampleStore};
pub use outliers::{OutlierConfig, OutlierReport};
pub use plan::{ProbeCoord, RoundCoord, TargetPlan};
pub use population::{PopulationReport, Resolver};
pub use regional::{probe_regional, RegionalReport};
pub use sampling::{
    AdaptiveBandit, DeltaPolicy, EvidenceState, PairEvidence, PaperExact, ProbeBudget, RoundSpend,
    SampleRequest, SamplingPolicy,
};
pub use session::{SessionOutcome, StudySession};
pub use study::{StudyAccumulator, StudyConfig, StudyConfigBuilder, StudyResult};
pub use timeouts::{find_suspects, TimeoutSuspect};
