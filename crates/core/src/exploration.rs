//! The §3 exploration: VPS sweeps and browser verification.
//!
//! Before the Luminati studies, the authors fetched the NS-identified
//! Akamai/Cloudflare customers from 16 VPSes with ZGrab (User-Agent only),
//! counted 403s (707 in Iran vs 69 in the US), flagged block-page
//! instances, and manually verified each in a real browser — finding ~27%
//! of flagged instances to be bot-detection false positives, all Akamai.
//! The browser step is simulated by refetching with a complete browser
//! header set: deterministic bot detection keys on header completeness, so
//! a block that vanishes under full headers was a crawler artefact.

use std::collections::BTreeMap;
use std::sync::Arc;

use geoblock_blockpages::{FingerprintSet, PageKind, Provider};
use geoblock_http::{ClientProfile, HeaderProfile, Request, Url};
use geoblock_lumscan::{follow_redirects, SessionId, Transport};
use geoblock_worldgen::CountryCode;
use serde::{Deserialize, Serialize};
use tokio::task::JoinSet;

/// A sweep task's yield: domain index, and (status, matched page) when a
/// response was received.
type SweepYield = (usize, Option<(u16, Option<PageKind>)>);

/// One flagged (domain, country) block-page instance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlaggedInstance {
    /// The domain.
    pub domain: String,
    /// The VPS country.
    pub country: CountryCode,
    /// The block page observed.
    pub kind: PageKind,
}

/// Results of a VPS sweep.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SweepResult {
    /// 403-status responses per country (§3.1's 707-vs-69 comparison).
    pub status_403: BTreeMap<CountryCode, usize>,
    /// Flagged block-page instances.
    pub flagged: Vec<FlaggedInstance>,
    /// Responses received per country.
    pub responses: BTreeMap<CountryCode, usize>,
}

/// Verification outcome for the flagged instances.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Verification {
    /// Instances that still block under a full browser header set.
    pub genuine: Vec<FlaggedInstance>,
    /// Instances that vanished: crawler false positives.
    pub false_positives: Vec<FlaggedInstance>,
}

impl Verification {
    /// False positives per provider (§3.1: "all from Akamai").
    pub fn fp_by_provider(&self) -> BTreeMap<Provider, usize> {
        let mut map = BTreeMap::new();
        for f in &self.false_positives {
            *map.entry(f.kind.provider()).or_insert(0) += 1;
        }
        map
    }

    /// False-positive rate among flagged instances.
    pub fn fp_rate(&self) -> f64 {
        let total = self.genuine.len() + self.false_positives.len();
        if total == 0 {
            0.0
        } else {
            self.false_positives.len() as f64 / total as f64
        }
    }
}

/// Fetch every domain once from one VPS with `profile`, classifying block
/// pages against `known_kinds` — at exploration time only the Akamai and
/// Cloudflare pages were known; the other twelve were discovered later by
/// the clustering of §4.1.3.
pub async fn sweep<T: Transport + 'static>(
    transport: Arc<T>,
    country: CountryCode,
    domains: &[String],
    profile: HeaderProfile,
    known_kinds: &[PageKind],
    concurrency: usize,
) -> SweepResult {
    let known_kinds = known_kinds.to_vec();
    let fingerprints = Arc::new(FingerprintSet::paper());
    let mut result = SweepResult::default();
    let mut join: JoinSet<SweepYield> = JoinSet::new();
    let mut next = 0usize;

    while next < domains.len() || !join.is_empty() {
        while next < domains.len() && join.len() < concurrency.max(1) {
            let transport = Arc::clone(&transport);
            let fingerprints = Arc::clone(&fingerprints);
            let known = known_kinds.clone();
            let domain = domains[next].clone();
            let idx = next;
            next += 1;
            join.spawn(async move {
                // Lift the header bundle into the matching full client
                // identity: a ZGrab sweep also presents ZGrab's TLS stack
                // and cannot answer JS interstitials.
                let request =
                    Request::get(Url::http(domain.as_str())).client_profile(&profile.into());
                match follow_redirects(
                    transport.as_ref(),
                    request,
                    country,
                    SessionId(idx as u64),
                    10,
                )
                .await
                {
                    Err(_) => (idx, None),
                    Ok(chain) => {
                        let resp = chain.final_response();
                        let kind = if resp.status.is_blockish() {
                            fingerprints
                                .classify(resp)
                                .map(|m| m.kind)
                                .filter(|k| known.contains(k))
                        } else {
                            None
                        };
                        (idx, Some((resp.status.as_u16(), kind)))
                    }
                }
            });
        }
        if let Some(done) = join.join_next().await {
            let (idx, outcome) = done.expect("sweep probe panicked");
            if let Some((status, kind)) = outcome {
                *result.responses.entry(country).or_insert(0) += 1;
                if status == 403 {
                    *result.status_403.entry(country).or_insert(0) += 1;
                }
                if let Some(kind) = kind {
                    result.flagged.push(FlaggedInstance {
                        domain: domains[idx].clone(),
                        country,
                        kind,
                    });
                }
            }
        }
    }
    result.flagged.sort_by(|a, b| a.domain.cmp(&b.domain));
    result
}

/// Verify flagged instances by refetching with a full browser header set
/// from the same country.
pub async fn verify_in_browser<T: Transport + 'static>(
    transport_for: impl Fn(CountryCode) -> Arc<T>,
    flagged: &[FlaggedInstance],
) -> Verification {
    let fingerprints = FingerprintSet::paper();
    let mut verification = Verification::default();
    for (i, instance) in flagged.iter().enumerate() {
        let transport = transport_for(instance.country);
        // A human verifier reloads a flaky page; three attempts keep
        // partially-enforcing (anycast-inconsistent) geoblocks out of the
        // false-positive bucket.
        let mut still_blocked = false;
        for attempt in 0..3u64 {
            // A real browser does the verifying: full headers, a browser
            // TLS stack, and the JS to clear any interstitial.
            let request = Request::get(Url::http(instance.domain.as_str()))
                .client_profile(&ClientProfile::browser());
            let outcome = follow_redirects(
                transport.as_ref(),
                request,
                instance.country,
                SessionId(1_000_000 + i as u64 * 4 + attempt),
                10,
            )
            .await;
            still_blocked = match &outcome {
                Ok(chain) => {
                    let resp = chain.final_response();
                    resp.status.is_blockish() && fingerprints.classify(resp).is_some()
                }
                // An error is not a block page; treat as unverifiable-
                // genuine (the manual process would keep retrying).
                Err(_) => true,
            };
            if still_blocked {
                break;
            }
        }
        if still_blocked {
            verification.genuine.push(instance.clone());
        } else {
            verification.false_positives.push(instance.clone());
        }
    }
    verification
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoblock_http::{FetchError, Response, StatusCode};
    use geoblock_lumscan::TransportRequest;
    use geoblock_worldgen::cc;

    /// geo.com geoblocks IR for everyone; bot.com serves an Akamai page to
    /// incomplete header sets everywhere.
    struct ToyVps {
        country: CountryCode,
    }

    impl Transport for ToyVps {
        async fn fetch_one(&self, req: TransportRequest) -> Result<Response, FetchError> {
            let host = req.request.effective_host();
            let params = geoblock_blockpages::PageParams::new(&host, "Iran", "45.1.1.1", 9);
            let full = req.request.headers.contains("accept-language");
            match host.as_str() {
                "geo.com" if self.country == cc("IR") => {
                    Ok(geoblock_blockpages::render(PageKind::Cloudflare, &params)
                        .finish(req.request.url))
                }
                "bot.com" if !full => {
                    Ok(geoblock_blockpages::render(PageKind::Akamai, &params)
                        .finish(req.request.url))
                }
                _ => Ok(Response::builder(StatusCode::OK)
                    .body("<html>fine</html>")
                    .finish(req.request.url)),
            }
        }
    }

    fn domains() -> Vec<String> {
        vec!["geo.com".into(), "bot.com".into(), "plain.com".into()]
    }

    #[tokio::test]
    async fn sweep_counts_403s_and_flags_pages() {
        let known = [PageKind::Akamai, PageKind::Cloudflare];
        let ir = sweep(
            Arc::new(ToyVps { country: cc("IR") }),
            cc("IR"),
            &domains(),
            HeaderProfile::ZgrabUserAgentOnly,
            &known,
            4,
        )
        .await;
        let us = sweep(
            Arc::new(ToyVps { country: cc("US") }),
            cc("US"),
            &domains(),
            HeaderProfile::ZgrabUserAgentOnly,
            &known,
            4,
        )
        .await;
        // Iran: geo block + bot FP = 2; US: bot FP only = 1.
        assert_eq!(ir.status_403[&cc("IR")], 2);
        assert_eq!(us.status_403[&cc("US")], 1);
        assert_eq!(ir.flagged.len(), 2);
        assert_eq!(us.flagged.len(), 1);
    }

    #[tokio::test]
    async fn browser_verification_splits_genuine_from_fp() {
        let flagged = vec![
            FlaggedInstance {
                domain: "geo.com".into(),
                country: cc("IR"),
                kind: PageKind::Cloudflare,
            },
            FlaggedInstance {
                domain: "bot.com".into(),
                country: cc("IR"),
                kind: PageKind::Akamai,
            },
        ];
        let verification =
            verify_in_browser(|country| Arc::new(ToyVps { country }), &flagged).await;
        assert_eq!(verification.genuine.len(), 1);
        assert_eq!(verification.genuine[0].domain, "geo.com");
        assert_eq!(verification.false_positives.len(), 1);
        assert_eq!(verification.false_positives[0].domain, "bot.com");
        // "All from Akamai."
        let fp = verification.fp_by_provider();
        assert_eq!(fp.get(&Provider::Akamai), Some(&1));
        assert_eq!(fp.len(), 1);
        assert!((verification.fp_rate() - 0.5).abs() < 1e-9);
    }
}
