//! [`StudySession`]: the unified study-driver surface.
//!
//! The measurement protocol used to be a sprawl of driver methods and free
//! functions — `baseline`/`baseline_with`, `resample`/`resample_with`,
//! `confirm_explicit`, `confirm_ambiguous`, `rank_blocking_countries` —
//! where every observer-taking variant doubled the API and callers wired
//! the same `(engine, config)` pair through each call. A session collapses
//! all of it behind one builder:
//!
//! ```ignore
//! let mut session = StudySession::new(engine, config)
//!     .sink(&mut progress)     // optional: live progress, gauges
//!     .trace(&mut trace_sink); // optional: DST trace capture
//! let outcome = session.full_protocol(&domains).await;
//! ```
//!
//! Observers attach once and see **every** pass the session runs —
//! baseline, resample, confirmation, ranking. Sessions are cheap handles
//! over an `Arc`-shared engine: build one per pass when different passes
//! need different observers (the DST scenario traces only its baseline).
//!
//! Phases are driven by a [`SamplingPolicy`](crate::sampling): the
//! session executes the [`SampleRequest`] rounds a policy emits
//! ([`run_round`](StudySession::run_round) /
//! [`run_policy`](StudySession::run_policy)), and the staged
//! `baseline`/`confirm` methods are those same round executors with the
//! default [`PaperExact`] phase arithmetic baked in — so opting into a
//! different policy changes *which* probes run, never *how* they run.

use std::sync::Arc;

use geoblock_blockpages::{CompiledFingerprintSet, PageKind};
use geoblock_lumscan::{BatchStats, Lumscan, ProbeResult, ProbeSink, ProbeTarget, Transport};
use geoblock_worldgen::CountryCode;

use crate::classify::classify_chain;
use crate::confirm::{flagged_explicit_pairs, flagged_pairs};
use crate::observation::{BodyArchive, Obs, SampleStore};
use crate::plan::TargetPlan;
use crate::sampling::{EvidenceState, PaperExact, ProbeBudget, SampleRequest, SamplingPolicy};
use crate::study::{StudyAccumulator, StudyConfig, StudyResult};

/// Fans stream events out to every attached observer. With no observers it
/// is exactly a `NoopSink`; with one it is transparent — same calls, same
/// order — so migrating a `*_with` call site never changes what its sink
/// sees.
struct FanoutSink<'a, 'b> {
    sinks: &'a mut [&'b mut dyn ProbeSink],
}

impl ProbeSink for FanoutSink<'_, '_> {
    fn started(&mut self, index: usize, target: &ProbeTarget, in_flight: usize) {
        for sink in self.sinks.iter_mut() {
            sink.started(index, target, in_flight);
        }
    }

    fn completed(
        &mut self,
        index: usize,
        result: &ProbeResult,
        stats: &BatchStats,
        in_flight: usize,
    ) {
        for sink in self.sinks.iter_mut() {
            sink.completed(index, result, stats, in_flight);
        }
    }

    fn finished(&mut self, stats: &BatchStats) {
        for sink in self.sinks.iter_mut() {
            sink.finished(stats);
        }
    }
}

/// What [`StudySession::full_protocol`] produced: the merged study data
/// plus how many pairs the baseline flagged for confirmation.
#[derive(Debug)]
pub struct SessionOutcome {
    /// Baseline + confirmation observations and retained bodies.
    pub result: StudyResult,
    /// (domain, country) pairs the baseline flagged as explicit blockers.
    pub flagged: usize,
}

/// One study driver: an engine, a configuration, and any observers,
/// carried through every pass of the measurement protocol.
///
/// The type is transport-generic and pass-agnostic — §4's Top-10K and §5's
/// Top-1M campaigns, the monitor's rescans, and the DST scenario are all
/// the same session pointed at different domain lists.
pub struct StudySession<'s, T: Transport + 'static> {
    engine: Arc<Lumscan<T>>,
    config: StudyConfig,
    fingerprints: CompiledFingerprintSet,
    observers: Vec<&'s mut dyn ProbeSink>,
    policy: Option<Box<dyn SamplingPolicy>>,
}

impl<'s, T: Transport + 'static> StudySession<'s, T> {
    /// A session over `engine` running `config`'s protocol.
    pub fn new(engine: Arc<Lumscan<T>>, config: StudyConfig) -> StudySession<'s, T> {
        StudySession {
            engine,
            config,
            fingerprints: CompiledFingerprintSet::paper(),
            observers: Vec::new(),
            policy: None,
        }
    }

    /// Attach a sampling policy; [`full_protocol`](StudySession::full_protocol)
    /// drives its rounds instead of the default [`PaperExact`]. Chainable,
    /// like [`sink`](StudySession::sink).
    pub fn policy(mut self, policy: impl SamplingPolicy + 'static) -> StudySession<'s, T> {
        self.policy = Some(Box::new(policy));
        self
    }

    /// Attach an observer: it sees every spawn and completion of every
    /// pass this session runs (live progress, gauges). Chainable;
    /// observers fire in attach order.
    pub fn sink(mut self, sink: &'s mut dyn ProbeSink) -> StudySession<'s, T> {
        self.observers.push(sink);
        self
    }

    /// Attach a trace-capturing observer (a
    /// `geoblock_simtest::TraceSink`, canonically). Identical mechanics to
    /// [`sink`](StudySession::sink) — the separate name marks call sites
    /// that exist for deterministic-replay capture rather than progress.
    pub fn trace(self, sink: &'s mut dyn ProbeSink) -> StudySession<'s, T> {
        self.sink(sink)
    }

    /// The configuration.
    pub fn config(&self) -> &StudyConfig {
        &self.config
    }

    /// The probing engine.
    pub fn engine(&self) -> &Arc<Lumscan<T>> {
        &self.engine
    }

    /// An empty result shaped `domains × config.countries` — the store a
    /// policy-driven run fills round by round.
    pub fn empty_result(&self, domains: &[String]) -> StudyResult {
        StudyResult {
            store: SampleStore::new(domains.to_vec(), self.config.countries.clone()),
            archive: BodyArchive::new(),
        }
    }

    /// Run the baseline pass: `baseline_samples` probes of every
    /// (domain, country) pair.
    ///
    /// Targets stream straight from the plan iterator into the engine and
    /// each completion is classified and dropped on arrival, so memory
    /// stays O(concurrency) — no chunk of `domains × countries × samples`
    /// targets or results ever exists.
    pub async fn baseline(&mut self, domains: &[String]) -> StudyResult {
        let mut result = self.empty_result(domains);
        self.grid_pass(&mut result, self.config.baseline_samples as usize)
            .await;
        result
    }

    /// A baseline-shaped grid pass merging into `result`: `samples` probes
    /// of every pair in the result's axes, with representative-country
    /// bodies offered to the archive.
    async fn grid_pass(&mut self, result: &mut StudyResult, samples: usize) {
        // The plan cannot borrow the store while the accumulator holds it
        // mutably, so the coordinate tables are cloned out first.
        let domains = result.store.domains.clone();
        let countries = result.store.countries.clone();
        let plan = TargetPlan::grid(&domains, &countries, samples);
        let mut acc = StudyAccumulator::new(
            &self.fingerprints,
            &countries,
            &self.config.rep_countries,
            &mut result.store,
            Some(&mut result.archive),
        );
        let mut sink = FanoutSink {
            sinks: &mut self.observers,
        };
        // Ordered: archive retention depends on offer order.
        let mut stream = self
            .engine
            .probe_stream_with(plan.iter(), &mut sink)
            .ordered();
        while let Some((i, result)) = stream.next().await {
            acc.absorb(plan.coord(i), &result);
        }
    }

    /// Execute one policy round against `result`, returning the probes
    /// spent. [`SampleRequest::Grid`] runs a baseline-shaped pass (bodies
    /// archived); [`SampleRequest::Pairs`] a confirmation-shaped
    /// [`resample`](StudySession::resample); [`SampleRequest::Done`] is a
    /// no-op.
    pub async fn run_round(&mut self, result: &mut StudyResult, request: &SampleRequest) -> usize {
        let probes = request.probes(result.store.domains.len(), result.store.countries.len());
        match request {
            SampleRequest::Done => {}
            SampleRequest::Grid { samples } => self.grid_pass(result, *samples).await,
            SampleRequest::Pairs { pairs, samples } => self.resample(result, pairs, *samples).await,
        }
        probes
    }

    /// Drive `policy` to completion over `domains`, charging every round
    /// to `budget`. Rounds are asked for one at a time against the
    /// evidence collected so far, so the policy's decisions (and the
    /// ledger) are a deterministic replay for a given engine seed.
    pub async fn run_policy(
        &mut self,
        policy: &mut dyn SamplingPolicy,
        domains: &[String],
        budget: &mut ProbeBudget,
    ) -> SessionOutcome {
        let mut result = self.empty_result(domains);
        for round in 0.. {
            let request = {
                let evidence = EvidenceState::new(&result.store, &self.config, round);
                policy.next_round(&evidence, budget)
            };
            if request.is_done() {
                break;
            }
            let probes = self.run_round(&mut result, &request).await;
            budget.charge(round, probes as u64);
        }
        let flagged = flagged_explicit_pairs(&result.store).len();
        SessionOutcome { result, flagged }
    }

    /// Resample arbitrary pairs `n` times each, merging into the store —
    /// the primitive behind confirmation and the Figure 1/3 sampling
    /// experiments. Streams `pairs × n` targets lazily; in-flight work is
    /// bounded by the engine's `concurrency`.
    pub async fn resample(&mut self, result: &mut StudyResult, pairs: &[(usize, usize)], n: usize) {
        // The plan cannot borrow the store while the accumulator holds it
        // mutably, so the coordinate tables are cloned out first.
        let domains = result.store.domains.clone();
        let countries = result.store.countries.clone();
        let plan = TargetPlan::pairs(&domains, &countries, pairs, n);
        let mut acc =
            StudyAccumulator::new(&self.fingerprints, &countries, &[], &mut result.store, None);
        let mut sink = FanoutSink {
            sinks: &mut self.observers,
        };
        let mut stream = self
            .engine
            .probe_stream_with(plan.iter(), &mut sink)
            .ordered();
        while let Some((i, probe)) = stream.next().await {
            acc.absorb(plan.coord(i), &probe);
        }
    }

    /// Confirmation pass for explicit geoblockers (§4.1.4): every pair
    /// that showed ≥1 explicit block page is resampled `confirm_samples`
    /// times; results merge into the store. Returns the number of pairs
    /// confirmed.
    pub async fn confirm(&mut self, result: &mut StudyResult) -> usize {
        let pairs = flagged_explicit_pairs(&result.store);
        let n = self.config.confirm.confirm_samples as usize;
        self.resample(result, &pairs, n).await;
        pairs.len()
    }

    /// Confirmation pass for ambiguous kinds (§5.1.2): every *domain* that
    /// showed one of `kinds` anywhere is resampled in **every** country.
    pub async fn confirm_ambiguous(
        &mut self,
        result: &mut StudyResult,
        kinds: &[PageKind],
    ) -> usize {
        let flagged = flagged_pairs(&result.store, kinds);
        let mut domains: Vec<usize> = flagged.iter().map(|(d, _)| *d).collect();
        domains.sort_unstable();
        domains.dedup();
        let pairs: Vec<(usize, usize)> = domains
            .iter()
            .flat_map(|&d| (0..result.store.countries.len()).map(move |c| (d, c)))
            .collect();
        let n = self.config.confirm.confirm_samples as usize;
        self.resample(result, &pairs, n).await;
        domains.len()
    }

    /// The full protocol in one call, driven by the attached policy
    /// ([`policy`](StudySession::policy)) or [`PaperExact`] by default —
    /// under which this is probe-for-probe the §4 baseline + explicit
    /// confirmation. The staged methods remain for callers that let
    /// virtual time pass between passes (how `makro.co.za`-style flips
    /// become observable).
    pub async fn full_protocol(&mut self, domains: &[String]) -> SessionOutcome {
        let mut policy: Box<dyn SamplingPolicy> =
            self.policy.take().unwrap_or_else(|| Box::new(PaperExact));
        let mut budget = ProbeBudget::unlimited();
        let outcome = self.run_policy(policy.as_mut(), domains, &mut budget).await;
        self.policy = Some(policy);
        outcome
    }

    /// Rank countries by how much explicit blocking a quick pre-pass
    /// observes (the paper seeded its top-20 list from an earlier
    /// Akamai/Cloudflare sweep). Probes each (domain, country) once;
    /// ranking uses `countries` rather than the session's vantage panel
    /// because this pass is how a panel gets *chosen*.
    pub async fn rank_countries(
        &mut self,
        domains: &[String],
        countries: &[CountryCode],
        top: usize,
    ) -> Vec<CountryCode> {
        let mut counts: Vec<(CountryCode, u32)> = countries.iter().map(|c| (*c, 0)).collect();
        let plan = TargetPlan::grid(domains, countries, 1);
        let fingerprints = self.fingerprints.clone();
        let mut sink = FanoutSink {
            sinks: &mut self.observers,
        };
        // Unordered: counting is commutative, so completions are consumed
        // the moment they land.
        let mut stream = self.engine.probe_stream_with(plan.iter(), &mut sink);
        while let Some((i, result)) = stream.next().await {
            let obs = classify_chain(&fingerprints, &result.outcome);
            if let Obs::Response { page: Some(_), .. } = obs {
                counts[plan.coord(i).country].1 += 1;
            }
        }
        counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        counts.into_iter().take(top).map(|(c, _)| c).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::confirm::ConfirmConfig;
    use geoblock_http::{FetchError, Response, StatusCode};
    use geoblock_lumscan::{GaugeSink, LumscanConfig, TransportRequest};
    use geoblock_worldgen::cc;

    /// A toy internet: `blocked.com` serves a Cloudflare 1009 page in IR,
    /// content elsewhere; `plain.com` always serves content.
    struct ToyNet;

    impl Transport for ToyNet {
        async fn fetch_one(&self, req: TransportRequest) -> Result<Response, FetchError> {
            let host = req.request.effective_host();
            if host == "lumtest.io" {
                return Ok(Response::builder(StatusCode::OK)
                    .body(format!("country={}", req.country))
                    .finish(req.request.url));
            }
            if host == "blocked.com" && req.country == cc("IR") {
                let params = geoblock_blockpages::PageParams::new(&host, "Iran", "5.1.1.1", 1);
                return Ok(geoblock_blockpages::render(PageKind::Cloudflare, &params)
                    .finish(req.request.url));
            }
            Ok(Response::builder(StatusCode::OK)
                .body("<html><body>".to_string() + &"content ".repeat(1000) + "</body></html>")
                .finish(req.request.url))
        }
    }

    fn engine() -> Arc<Lumscan<ToyNet>> {
        Arc::new(Lumscan::new(ToyNet, LumscanConfig::default()))
    }

    fn config() -> StudyConfig {
        StudyConfig::builder()
            .countries([cc("IR"), cc("US"), cc("DE")])
            .rep_countries([cc("IR"), cc("US")])
            .build()
            .expect("valid study config")
    }

    fn domains() -> Vec<String> {
        vec!["blocked.com".to_string(), "plain.com".to_string()]
    }

    #[tokio::test]
    async fn full_protocol_confirms_the_blocked_pair() {
        let mut session = StudySession::new(engine(), config());
        let outcome = session.full_protocol(&domains()).await;
        assert_eq!(outcome.flagged, 1);
        let verdicts = outcome.result.verdicts(&session.config().confirm);
        assert_eq!(verdicts.len(), 1);
        assert_eq!(verdicts[0].domain, "blocked.com");
        assert_eq!(verdicts[0].country, cc("IR"));
        assert_eq!(verdicts[0].kind, PageKind::Cloudflare);
        assert_eq!(verdicts[0].total, 23);
    }

    #[tokio::test]
    async fn policy_path_matches_the_staged_pipeline_exactly() {
        // The refactor guarantee: full_protocol (PaperExact rounds) is
        // probe-for-probe the staged baseline + confirm on a fresh engine.
        let staged = {
            let mut session = StudySession::new(engine(), config());
            let mut result = session.baseline(&domains()).await;
            session.confirm(&mut result).await;
            result
        };
        let mut session = StudySession::new(engine(), config());
        let policy = session.full_protocol(&domains()).await.result;
        for ((d, c, a), (_, _, b)) in staged.store.iter_cells().zip(policy.store.iter_cells()) {
            assert_eq!(
                a, b,
                "cell ({d}, {c}) differs between staged and policy paths"
            );
        }
        assert_eq!(staged.archive.len(), policy.archive.len());
    }

    #[tokio::test]
    async fn baseline_collects_three_samples_per_pair() {
        let mut session = StudySession::new(engine(), config());
        let result = session.baseline(&domains()).await;
        assert_eq!(result.store.total_samples(), 2 * 3 * 3);
        for d in 0..2 {
            for c in 0..3 {
                assert_eq!(result.store.cell(d, c).len(), 3);
            }
        }
    }

    #[tokio::test]
    async fn block_page_bodies_are_archived_in_rep_countries() {
        let mut session = StudySession::new(engine(), config());
        let result = session.baseline(&["blocked.com".to_string()]).await;
        // IR is a rep country and its samples are block pages → retained.
        assert!(
            result.archive.len() >= 3,
            "archived {}",
            result.archive.len()
        );
        let doc = result.archive.get(0, 0, 0).expect("IR sample retained");
        assert!(String::from_utf8_lossy(doc).contains("banned the country"));
    }

    #[tokio::test]
    async fn resample_is_chunk_invariant() {
        // The streaming path has no chunks: observations must be identical
        // whatever work_unit_domains says, and in-flight work is bounded by
        // the engine's concurrency, not by any chunk size.
        async fn run(work_unit_domains: usize) -> (StudyResult, GaugeSink) {
            let engine = Arc::new(Lumscan::new(
                ToyNet,
                LumscanConfig::builder().concurrency(4).build().unwrap(),
            ));
            let config = StudyConfig::builder()
                .countries([cc("IR"), cc("US"), cc("DE")])
                .rep_countries([cc("IR"), cc("US")])
                .work_unit_domains(work_unit_domains)
                .build()
                .unwrap();
            let mut gauge = GaugeSink::new();
            let mut result = {
                let mut session = StudySession::new(engine.clone(), config.clone());
                session.baseline(&domains()).await
            };
            let pairs: Vec<(usize, usize)> =
                (0..2).flat_map(|d| (0..3).map(move |c| (d, c))).collect();
            let mut session = StudySession::new(engine, config).sink(&mut gauge);
            session.resample(&mut result, &pairs, 5).await;
            drop(session);
            (result, gauge)
        }
        let (small, gauge) = run(1).await;
        let (large, _) = run(4096).await;
        for ((d, c, a), (_, _, b)) in small.store.iter_cells().zip(large.store.iter_cells()) {
            assert_eq!(
                a, b,
                "cell ({d}, {c}) differs across work_unit_domains settings"
            );
        }
        assert_eq!(
            gauge.started,
            2 * 3 * 5,
            "resample probes every pair n times"
        );
        assert!(
            gauge.peak_in_flight <= 4,
            "in-flight {} exceeded engine concurrency",
            gauge.peak_in_flight
        );
    }

    #[tokio::test]
    async fn adaptive_bandit_floors_flagged_pairs_and_skips_clean_ones() {
        use crate::sampling::AdaptiveBandit;
        let mut session = StudySession::new(engine(), config()).policy(AdaptiveBandit::default());
        let outcome = session.full_protocol(&domains()).await;
        assert_eq!(outcome.flagged, 1);
        // The flagged pair reaches the full 23-sample bar; ToyNet is
        // deterministic, so every clean pair stops at one scout sample.
        assert_eq!(outcome.result.store.cell(0, 0).len(), 23);
        assert_eq!(outcome.result.store.cell(1, 1).len(), 1);
        let verdicts = outcome.result.verdicts(&session.config().confirm);
        assert_eq!(verdicts.len(), 1);
        assert_eq!(verdicts[0].domain, "blocked.com");
        assert_eq!(verdicts[0].total, 23);
    }

    #[tokio::test]
    async fn run_policy_records_the_ledger() {
        use crate::sampling::PaperExact;
        let mut session = StudySession::new(engine(), config());
        let mut budget = ProbeBudget::unlimited();
        let mut policy = PaperExact;
        let outcome = session
            .run_policy(&mut policy, &domains(), &mut budget)
            .await;
        assert_eq!(outcome.flagged, 1);
        assert_eq!(budget.spent, (2 * 3 * 3 + 20) as u64);
        assert_eq!(budget.rounds.len(), 2);
    }

    #[tokio::test]
    async fn observers_see_every_pass() {
        let mut gauge = GaugeSink::new();
        let mut session = StudySession::new(engine(), config()).sink(&mut gauge);
        let mut result = session.baseline(&domains()).await;
        let baseline_probes = 2 * 3 * 3;
        session.confirm(&mut result).await;
        drop(session);
        assert_eq!(
            gauge.started,
            baseline_probes + 20,
            "baseline + one flagged pair's confirmation"
        );
    }

    #[tokio::test]
    async fn two_observers_fan_out_identically() {
        let mut a = GaugeSink::new();
        let mut b = GaugeSink::new();
        let mut session = StudySession::new(engine(), config())
            .sink(&mut a)
            .trace(&mut b);
        session.baseline(&domains()).await;
        drop(session);
        assert_eq!(a.started, b.started);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.started, 2 * 3 * 3);
    }

    #[tokio::test]
    async fn ambiguous_confirmation_resamples_all_countries() {
        let mut session = StudySession::new(engine(), config());
        let mut result = session.baseline(&["blocked.com".to_string()]).await;
        let confirmed = session
            .confirm_ambiguous(&mut result, &[PageKind::Cloudflare])
            .await;
        assert_eq!(confirmed, 1);
        for c in 0..3 {
            assert_eq!(result.store.cell(0, c).len(), 23);
        }
    }

    #[tokio::test]
    async fn country_ranking_puts_iran_first() {
        let mut session = StudySession::new(engine(), config());
        let ranked = session
            .rank_countries(&domains(), &[cc("US"), cc("IR"), cc("DE")], 2)
            .await;
        assert_eq!(ranked[0], cc("IR"));
        assert_eq!(ranked.len(), 2);
    }

    #[tokio::test]
    async fn verdicts_respect_the_agreement_threshold() {
        let mut session = StudySession::new(engine(), config());
        let outcome = session.full_protocol(&domains()).await;
        let strict = ConfirmConfig {
            confirm_samples: 20,
            threshold: 1.01, // unattainable
        };
        assert!(outcome.result.verdicts(&strict).is_empty());
    }
}
