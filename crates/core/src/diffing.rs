//! Longitudinal comparison of studies.
//!
//! §4.2's `makro.co.za` anecdote — a domain that geoblocked 33 countries
//! during the baseline and none days later — shows that blocking policies
//! move *during* a study. This module compares two verdict sets (or two
//! stores) taken at different times and reports policy changes: countries
//! newly blocked, unblocked, and domains whose provider changed. Repeated
//! snapshots turn the one-shot study into the monitoring system the paper's
//! conclusion gestures at.

use std::collections::{BTreeMap, BTreeSet};

use geoblock_blockpages::PageKind;
use geoblock_worldgen::CountryCode;
use serde::{Deserialize, Serialize};

use crate::confirm::GeoblockVerdict;

/// The per-domain change between two snapshots.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DomainDelta {
    /// The domain.
    pub domain: String,
    /// Countries blocked in the later snapshot but not the earlier.
    pub newly_blocked: Vec<CountryCode>,
    /// Countries blocked earlier but no longer.
    pub unblocked: Vec<CountryCode>,
    /// Block page in the earlier snapshot (modal kind), if any.
    pub kind_before: Option<PageKind>,
    /// Block page in the later snapshot, if any.
    pub kind_after: Option<PageKind>,
}

impl DomainDelta {
    /// A `makro.co.za`-style full retreat: blocked somewhere before,
    /// nowhere after.
    pub fn is_full_retreat(&self) -> bool {
        !self.unblocked.is_empty() && self.kind_after.is_none()
    }

    /// Whether the serving CDN (by block page) changed between snapshots.
    pub fn provider_changed(&self) -> bool {
        match (self.kind_before, self.kind_after) {
            (Some(a), Some(b)) => a.provider() != b.provider(),
            _ => false,
        }
    }
}

/// The full diff between two snapshots.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StudyDiff {
    /// Domains with any change, sorted by name.
    pub deltas: Vec<DomainDelta>,
    /// (domain, country) pairs blocked in both snapshots.
    pub stable_pairs: usize,
}

impl StudyDiff {
    /// Domains that stopped blocking entirely.
    pub fn full_retreats(&self) -> Vec<&DomainDelta> {
        self.deltas.iter().filter(|d| d.is_full_retreat()).collect()
    }

    /// Domains that started blocking (no verdicts before, some after).
    pub fn new_blockers(&self) -> Vec<&DomainDelta> {
        self.deltas
            .iter()
            .filter(|d| d.kind_before.is_none() && d.kind_after.is_some())
            .collect()
    }

    /// Total (domain, country) pairs newly blocked.
    pub fn newly_blocked_pairs(&self) -> usize {
        self.deltas.iter().map(|d| d.newly_blocked.len()).sum()
    }

    /// Total (domain, country) pairs unblocked.
    pub fn unblocked_pairs(&self) -> usize {
        self.deltas.iter().map(|d| d.unblocked.len()).sum()
    }
}

fn index(
    verdicts: &[GeoblockVerdict],
) -> BTreeMap<&str, (BTreeSet<CountryCode>, Option<PageKind>)> {
    let mut map: BTreeMap<&str, (BTreeSet<CountryCode>, Option<PageKind>)> = BTreeMap::new();
    for v in verdicts {
        let entry = map.entry(v.domain.as_str()).or_default();
        entry.0.insert(v.country);
        // Modal-ish: keep the first kind seen (verdicts are sorted).
        entry.1.get_or_insert(v.kind);
    }
    map
}

/// Diff two verdict snapshots (earlier, later).
pub fn diff_studies(before: &[GeoblockVerdict], after: &[GeoblockVerdict]) -> StudyDiff {
    let b = index(before);
    let a = index(after);
    let mut domains: BTreeSet<&str> = b.keys().copied().collect();
    domains.extend(a.keys().copied());

    let mut diff = StudyDiff::default();
    for domain in domains {
        let empty = (BTreeSet::new(), None);
        let (b_set, b_kind) = b.get(domain).unwrap_or(&empty);
        let (a_set, a_kind) = a.get(domain).unwrap_or(&empty);
        let newly_blocked: Vec<CountryCode> = a_set.difference(b_set).copied().collect();
        let unblocked: Vec<CountryCode> = b_set.difference(a_set).copied().collect();
        diff.stable_pairs += b_set.intersection(a_set).count();
        if newly_blocked.is_empty() && unblocked.is_empty() && b_kind == a_kind {
            continue;
        }
        diff.deltas.push(DomainDelta {
            domain: domain.to_string(),
            newly_blocked,
            unblocked,
            kind_before: *b_kind,
            kind_after: *a_kind,
        });
    }
    diff
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoblock_worldgen::cc;

    fn v(domain: &str, country: &str, kind: PageKind) -> GeoblockVerdict {
        GeoblockVerdict {
            domain: domain.into(),
            country: cc(country),
            kind,
            block_count: 23,
            total: 23,
        }
    }

    #[test]
    fn detects_makro_style_retreat() {
        let before = vec![
            v("makro.co.za", "BW", PageKind::Cloudflare),
            v("makro.co.za", "FR", PageKind::Cloudflare),
            v("stable.com", "IR", PageKind::AppEngine),
        ];
        let after = vec![v("stable.com", "IR", PageKind::AppEngine)];
        let diff = diff_studies(&before, &after);
        assert_eq!(diff.deltas.len(), 1);
        let retreats = diff.full_retreats();
        assert_eq!(retreats.len(), 1);
        assert_eq!(retreats[0].domain, "makro.co.za");
        assert_eq!(retreats[0].unblocked, vec![cc("BW"), cc("FR")]);
        assert_eq!(diff.stable_pairs, 1);
    }

    #[test]
    fn detects_new_blockers_and_expansions() {
        let before = vec![v("grow.com", "IR", PageKind::Cloudflare)];
        let after = vec![
            v("grow.com", "IR", PageKind::Cloudflare),
            v("grow.com", "SY", PageKind::Cloudflare),
            v("fresh.com", "CU", PageKind::CloudFront),
        ];
        let diff = diff_studies(&before, &after);
        assert_eq!(diff.newly_blocked_pairs(), 2);
        assert_eq!(diff.unblocked_pairs(), 0);
        let new = diff.new_blockers();
        assert_eq!(new.len(), 1);
        assert_eq!(new[0].domain, "fresh.com");
    }

    #[test]
    fn detects_provider_migration() {
        let before = vec![v("mover.com", "IR", PageKind::Cloudflare)];
        let after = vec![v("mover.com", "IR", PageKind::CloudFront)];
        let diff = diff_studies(&before, &after);
        assert_eq!(diff.deltas.len(), 1);
        assert!(diff.deltas[0].provider_changed());
        assert!(!diff.deltas[0].is_full_retreat());
        assert_eq!(diff.stable_pairs, 1);
    }

    #[test]
    fn identical_snapshots_are_empty_diffs() {
        let snap = vec![
            v("a.com", "IR", PageKind::Cloudflare),
            v("b.com", "SY", PageKind::AppEngine),
        ];
        let diff = diff_studies(&snap, &snap);
        assert!(diff.deltas.is_empty());
        assert_eq!(diff.stable_pairs, 2);
    }

    #[test]
    fn provider_changed_requires_kinds_on_both_sides() {
        // A domain appearing (None -> Some) or vanishing (Some -> None) is
        // a blocking change, not a provider migration — every mixed-None
        // combination must answer false.
        let appear = diff_studies(&[], &[v("new.com", "IR", PageKind::Cloudflare)]);
        assert_eq!(appear.deltas.len(), 1);
        assert!(appear.deltas[0].kind_before.is_none());
        assert!(!appear.deltas[0].provider_changed());
        assert!(!appear.deltas[0].is_full_retreat());

        let vanish = diff_studies(&[v("gone.com", "IR", PageKind::Cloudflare)], &[]);
        assert_eq!(vanish.deltas.len(), 1);
        assert!(vanish.deltas[0].kind_after.is_none());
        assert!(!vanish.deltas[0].provider_changed());
        assert!(vanish.deltas[0].is_full_retreat());

        // Same provider, different page flavor (Cloudflare 1009 vs its
        // CAPTCHA interstitial) is not a migration either.
        let flavor = diff_studies(
            &[v("same.com", "IR", PageKind::Cloudflare)],
            &[v("same.com", "IR", PageKind::CloudflareCaptcha)],
        );
        assert_eq!(flavor.deltas.len(), 1, "kind change is still a delta");
        assert!(!flavor.deltas[0].provider_changed());
    }

    #[test]
    fn three_snapshot_chain_composes_block_migrate_retreat() {
        // The full makro arc across a chain of snapshots: appear, then
        // migrate providers while expanding, then retreat entirely.
        // Consecutive diffs must each tell their own chapter and the
        // endpoints must reconcile.
        let s0: Vec<GeoblockVerdict> = Vec::new();
        let s1 = vec![v("arc.com", "IR", PageKind::Cloudflare)];
        let s2 = vec![
            v("arc.com", "IR", PageKind::CloudFront),
            v("arc.com", "SY", PageKind::CloudFront),
        ];
        let s3: Vec<GeoblockVerdict> = Vec::new();

        let d01 = diff_studies(&s0, &s1);
        assert_eq!(d01.new_blockers().len(), 1);
        assert_eq!(d01.newly_blocked_pairs(), 1);
        assert_eq!(d01.stable_pairs, 0);

        let d12 = diff_studies(&s1, &s2);
        assert_eq!(d12.deltas.len(), 1);
        assert!(d12.deltas[0].provider_changed());
        assert_eq!(d12.newly_blocked_pairs(), 1, "SY joined");
        assert_eq!(d12.stable_pairs, 1, "IR persisted through the migration");
        assert!(d12.new_blockers().is_empty(), "arc.com already blocked");

        let d23 = diff_studies(&s2, &s3);
        assert_eq!(d23.full_retreats().len(), 1);
        assert_eq!(d23.unblocked_pairs(), 2);

        // Chain totals reconcile with the end-to-end diff (empty -> empty).
        let d03 = diff_studies(&s0, &s3);
        assert!(d03.deltas.is_empty());
        let chain_new: usize = [&d01, &d12, &d23]
            .iter()
            .map(|d| d.newly_blocked_pairs())
            .sum();
        let chain_gone: usize = [&d01, &d12, &d23].iter().map(|d| d.unblocked_pairs()).sum();
        assert_eq!(
            chain_new, chain_gone,
            "every blocked pair eventually retreated"
        );
    }
}
