//! Turning fetch outcomes into observations.

use geoblock_blockpages::CompiledFingerprintSet;
use geoblock_http::{FetchOutcome, RedirectChain};

use crate::observation::{ErrKind, Obs};

/// Classify a fetch outcome into a compact observation.
///
/// Fingerprint matching runs only on block-plausible responses (403 / 451 /
/// 503) — every known block or challenge page rides one of those statuses,
/// and skipping 200s keeps classification out of the hot path for ordinary
/// content. Matching uses the compiled automaton: one pass over the raw
/// body bytes, no lossy UTF-8 decode.
pub fn classify_chain(fingerprints: &CompiledFingerprintSet, outcome: &FetchOutcome) -> Obs {
    match outcome {
        Err(e) => Obs::Error(ErrKind::from(e)),
        Ok(chain) => classify_response(fingerprints, chain),
    }
}

fn classify_response(fingerprints: &CompiledFingerprintSet, chain: &RedirectChain) -> Obs {
    let response = chain.final_response();
    let page = if response.status.is_blockish() {
        fingerprints.classify(response).map(|m| m.kind)
    } else {
        None
    };
    Obs::Response {
        status: response.status.as_u16(),
        len: response.body.len() as u32,
        page,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoblock_blockpages::{render, PageKind, PageParams};
    use geoblock_http::{FetchError, Hop, Request, Response, StatusCode, Url};

    fn chain_of(response: Response) -> RedirectChain {
        RedirectChain::new(vec![Hop {
            request: Request::get(response.url.clone()),
            response,
        }])
    }

    #[test]
    fn block_pages_are_fingerprinted() {
        let fp = CompiledFingerprintSet::paper();
        let params = PageParams::new("x.com", "Iran", "5.1.1.1", 3);
        let resp = render(PageKind::Cloudflare, &params).finish(Url::http("x.com"));
        let obs = classify_chain(&fp, &Ok(chain_of(resp)));
        assert_eq!(obs.page(), Some(PageKind::Cloudflare));
        assert!(obs.explicit_geoblock());
    }

    #[test]
    fn ordinary_pages_are_not_scanned() {
        let fp = CompiledFingerprintSet::paper();
        // A 200 whose body *contains* block-page text must not match — the
        // status gate prevents it (a news article quoting a block page is
        // not a block).
        let resp = Response::builder(StatusCode::OK)
            .body("article: the page said 'has banned the country or region' and Cloudflare Ray ID")
            .finish(Url::http("news.com"));
        let obs = classify_chain(&fp, &Ok(chain_of(resp)));
        assert_eq!(obs.page(), None);
        assert!(obs.responded());
    }

    #[test]
    fn plain_403s_match_nothing() {
        let fp = CompiledFingerprintSet::paper();
        let resp = Response::builder(StatusCode::FORBIDDEN)
            .body("<h1>Forbidden</h1>")
            .finish(Url::http("x.com"));
        let obs = classify_chain(&fp, &Ok(chain_of(resp)));
        assert_eq!(obs.page(), None);
        assert_eq!(obs.body_len(), Some(18));
    }

    #[test]
    fn errors_project_to_errkind() {
        let fp = CompiledFingerprintSet::paper();
        let obs = classify_chain(&fp, &Err(FetchError::Timeout));
        assert_eq!(obs, Obs::Error(ErrKind::Timeout));
    }
}
