//! The confirmation methodology (§4.1.4): 3 baseline samples, 20-sample
//! confirmation, 80% agreement.

use geoblock_blockpages::{PageClass, PageKind};
use geoblock_worldgen::CountryCode;
use serde::{Deserialize, Serialize};

use crate::observation::SampleStore;

/// Confirmation configuration.
#[derive(Debug, Clone)]
pub struct ConfirmConfig {
    /// Confirmation samples per flagged pair (20 in the paper).
    pub confirm_samples: u32,
    /// Agreement threshold over all samples of the pair (0.8).
    pub threshold: f64,
}

impl Default for ConfirmConfig {
    fn default() -> Self {
        ConfirmConfig {
            confirm_samples: 20,
            threshold: 0.80,
        }
    }
}

/// A confirmed geoblocking instance: one (domain, country) pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeoblockVerdict {
    /// Blocked domain.
    pub domain: String,
    /// Blocking country.
    pub country: CountryCode,
    /// The block page observed (modal kind).
    pub kind: PageKind,
    /// Samples that showed the block page.
    pub block_count: u32,
    /// Total samples of the pair.
    pub total: u32,
}

impl GeoblockVerdict {
    /// Agreement in [0, 1].
    pub fn agreement(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.block_count as f64 / self.total as f64
        }
    }
}

/// Pairs flagged for confirmation: saw ≥1 page of one of `kinds` in the
/// baseline pass. Returns `(domain_idx, country_idx)`.
pub fn flagged_pairs(store: &SampleStore, kinds: &[PageKind]) -> Vec<(usize, usize)> {
    store
        .iter_cells()
        .filter(|(_, _, samples)| {
            samples
                .iter()
                .any(|o| o.page().map(|k| kinds.contains(&k)).unwrap_or(false))
        })
        .map(|(d, c, _)| (d, c))
        .collect()
}

/// Pairs whose baseline shows any *explicit* geoblock page.
pub fn flagged_explicit_pairs(store: &SampleStore) -> Vec<(usize, usize)> {
    let kinds: Vec<PageKind> = PageKind::ALL
        .into_iter()
        .filter(|k| k.class() == PageClass::ExplicitGeoblock)
        .collect();
    flagged_pairs(store, &kinds)
}

/// Decide verdicts over a store that already contains the confirmation
/// samples (merged into the baseline cells). Only explicit geoblock pages
/// count (§4.2 restricts the analysis to pages that explicitly signal
/// geolocation blocking).
pub fn verdicts(store: &SampleStore, config: &ConfirmConfig) -> Vec<GeoblockVerdict> {
    let mut out = Vec::new();
    for (d, c, samples) in store.iter_cells() {
        let mut counts: std::collections::HashMap<PageKind, u32> = std::collections::HashMap::new();
        for obs in samples {
            if let Some(kind) = obs.page() {
                if kind.class() == PageClass::ExplicitGeoblock {
                    *counts.entry(kind).or_insert(0) += 1;
                }
            }
        }
        // Modal kind, ties broken by `PageKind` order so verdicts are a
        // deterministic function of the store (a 50/50 split can reach a
        // lowered threshold, and iteration order must not pick its kind).
        let mut counted: Vec<(PageKind, u32)> = counts.into_iter().collect();
        counted.sort_unstable_by_key(|&(k, v)| (std::cmp::Reverse(v), k));
        let Some(&(kind, block_count)) = counted.first() else {
            continue;
        };
        let total = samples.len() as u32;
        // The pair must have been confirmed (≥ baseline + confirmation
        // samples) and meet the agreement threshold over all its samples.
        if total > config.confirm_samples && block_count as f64 / total as f64 >= config.threshold {
            out.push(GeoblockVerdict {
                domain: store.domains[d].clone(),
                country: store.countries[c],
                kind,
                block_count,
                total,
            });
        }
    }
    out.sort_by(|a, b| a.domain.cmp(&b.domain).then(a.country.cmp(&b.country)));
    out
}

/// Instances that were flagged but eliminated by the threshold (the 77 /
/// 11.4% of §4.2) — useful for Figure 4's distribution.
pub fn eliminated(store: &SampleStore, config: &ConfirmConfig) -> usize {
    let flagged = flagged_explicit_pairs(store).len();
    flagged.saturating_sub(verdicts(store, config).len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observation::Obs;
    use geoblock_worldgen::cc;

    fn block(kind: PageKind) -> Obs {
        Obs::Response {
            status: 403,
            len: 1500,
            page: Some(kind),
        }
    }

    fn ok() -> Obs {
        Obs::Response {
            status: 200,
            len: 9000,
            page: None,
        }
    }

    fn store_with(pattern: &[(usize, Obs)]) -> SampleStore {
        let mut s = SampleStore::new(vec!["a.com".into()], vec![cc("IR"), cc("US")]);
        for (country, obs) in pattern {
            s.push(0, *country, *obs);
        }
        s
    }

    #[test]
    fn flagging_requires_one_block_page() {
        let s = store_with(&[(0, block(PageKind::Cloudflare)), (0, ok()), (1, ok())]);
        assert_eq!(flagged_explicit_pairs(&s), vec![(0, 0)]);
    }

    #[test]
    fn captcha_pages_do_not_flag() {
        let s = store_with(&[(0, block(PageKind::CloudflareCaptcha))]);
        assert!(flagged_explicit_pairs(&s).is_empty());
    }

    #[test]
    fn verdict_requires_confirmation_volume_and_agreement() {
        // 3 baseline blocks only: not confirmed yet.
        let s = store_with(&[(0, block(PageKind::Cloudflare)); 3].map(|x| x));
        assert!(verdicts(&s, &ConfirmConfig::default()).is_empty());

        // 3 + 20 samples, all blocks: confirmed.
        let mut s = store_with(&[]);
        for _ in 0..23 {
            s.push(0, 0, block(PageKind::Cloudflare));
        }
        let v = verdicts(&s, &ConfirmConfig::default());
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, PageKind::Cloudflare);
        assert!((v[0].agreement() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn below_threshold_pairs_are_eliminated() {
        // 23 samples with only 17 blocks: 74% < 80%.
        let mut s = store_with(&[]);
        for i in 0..23 {
            s.push(
                0,
                0,
                if i < 17 {
                    block(PageKind::AppEngine)
                } else {
                    ok()
                },
            );
        }
        assert!(verdicts(&s, &ConfirmConfig::default()).is_empty());
        assert_eq!(eliminated(&s, &ConfirmConfig::default()), 1);
    }

    #[test]
    fn errors_count_against_agreement() {
        // 19 blocks + 4 errors = 82.6% agreement: passes.
        let mut s = store_with(&[]);
        for _ in 0..19 {
            s.push(0, 0, block(PageKind::CloudFront));
        }
        for _ in 0..4 {
            s.push(0, 0, Obs::Error(crate::observation::ErrKind::Timeout));
        }
        let v = verdicts(&s, &ConfirmConfig::default());
        assert_eq!(v.len(), 1);
        assert!(v[0].agreement() > 0.8);
    }

    #[test]
    fn zero_sample_confirm_accepts_baseline_evidence() {
        // confirm_samples == 0: the volume gate degenerates to "any
        // sample at all", so a unanimous baseline is enough.
        let config = ConfirmConfig {
            confirm_samples: 0,
            threshold: 0.80,
        };
        let s = store_with(&[(0, block(PageKind::Cloudflare))]);
        let v = verdicts(&s, &config);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].total, 1);
        assert_eq!(v[0].block_count, 1);
        // A clean pair still yields nothing, even with no volume gate.
        assert!(verdicts(&store_with(&[(0, ok())]), &config).is_empty());
    }

    #[test]
    fn threshold_exactly_at_eighty_percent_passes() {
        // 20 blocks over 25 samples is agreement == 0.80 exactly; the
        // comparison is ≥, so the pair is confirmed.
        let mut s = store_with(&[]);
        for i in 0..25 {
            s.push(
                0,
                0,
                if i < 20 {
                    block(PageKind::Cloudflare)
                } else {
                    ok()
                },
            );
        }
        let v = verdicts(&s, &ConfirmConfig::default());
        assert_eq!(v.len(), 1);
        assert!((v[0].agreement() - 0.80).abs() < 1e-9);

        // One block fewer (19/24 ≈ 79.2%) falls under the bar.
        let mut s = store_with(&[]);
        for i in 0..24 {
            s.push(
                0,
                0,
                if i < 19 {
                    block(PageKind::Cloudflare)
                } else {
                    ok()
                },
            );
        }
        assert!(verdicts(&s, &ConfirmConfig::default()).is_empty());
    }

    #[test]
    fn unanimous_disagreement_ties_break_deterministically() {
        // Two kinds split a pair 12/12. Under the default 80% threshold
        // neither can win, but a lowered threshold can confirm the pair —
        // and the winning kind must be a function of the data, not of
        // hash-map iteration order: ties break toward the smaller
        // `PageKind` in its derived order.
        let mut s = store_with(&[]);
        for _ in 0..12 {
            s.push(0, 0, block(PageKind::Cloudflare));
            s.push(0, 0, block(PageKind::Baidu));
        }
        assert!(verdicts(&s, &ConfirmConfig::default()).is_empty());

        let half = ConfirmConfig {
            confirm_samples: 20,
            threshold: 0.5,
        };
        let expected = PageKind::Cloudflare.min(PageKind::Baidu);
        for _ in 0..8 {
            let v = verdicts(&s, &half);
            assert_eq!(v.len(), 1);
            assert_eq!(v[0].kind, expected);
            assert_eq!(v[0].block_count, 12);
            assert_eq!(v[0].total, 24);
        }
    }

    #[test]
    fn modal_kind_wins() {
        let mut s = store_with(&[]);
        for _ in 0..20 {
            s.push(0, 0, block(PageKind::Cloudflare));
        }
        for _ in 0..3 {
            s.push(0, 0, block(PageKind::Baidu));
        }
        let v = verdicts(&s, &ConfirmConfig::default());
        assert_eq!(v[0].kind, PageKind::Cloudflare);
        assert_eq!(v[0].block_count, 20);
    }
}
