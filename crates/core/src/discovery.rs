//! Block-page discovery: clustering the outlier corpus (§4.1.3).
//!
//! The paper clustered 24,381 outlier pages into 119 clusters and examined
//! each by hand, extracting signatures for 14 page types served by 7 CDNs
//! and hosting providers. The clustering here is the same TF-IDF +
//! single-link stack; the *manual examination* step is simulated by
//! labelling each cluster with the fingerprint set — which is honest
//! because the fingerprints are precisely what the manual step produced,
//! and the interesting question a reproduction can answer is whether the
//! clustering isolates those families at all (cluster purity).

use geoblock_blockpages::{CompiledFingerprintSet, PageClass, PageKind, Provider};
use geoblock_textmine::{single_link, TfIdfVectorizer};
use serde::{Deserialize, Serialize};

use crate::observation::BodyArchive;
use crate::outliers::Outlier;

/// Clustering configuration.
#[derive(Debug, Clone)]
pub struct DiscoveryConfig {
    /// Single-link cosine-distance threshold.
    pub tau: f32,
    /// Minimum document frequency for TF-IDF features.
    pub min_df: u32,
}

impl Default for DiscoveryConfig {
    fn default() -> Self {
        DiscoveryConfig {
            tau: 0.38,
            min_df: 2,
        }
    }
}

/// One cluster, summarised.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterSummary {
    /// Dense cluster id.
    pub id: u32,
    /// Number of member documents.
    pub size: usize,
    /// Fingerprint label of the cluster's representative document, if the
    /// cluster is a known block-page family.
    pub label: Option<PageKind>,
    /// Fraction of member documents agreeing with the label (purity).
    pub purity: f64,
    /// An excerpt of the representative document.
    pub excerpt: String,
}

/// The discovery phase's output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DiscoveryReport {
    /// All clusters, largest first.
    pub clusters: Vec<ClusterSummary>,
    /// Documents that entered the corpus.
    pub corpus_size: usize,
    /// Outliers whose bodies were not retained (cannot be clustered).
    pub missing_bodies: usize,
}

impl DiscoveryReport {
    /// The CDN / hosting providers discovered through labelled block-page
    /// clusters — Table 1's final column (7 in the paper: Akamai,
    /// Cloudflare, CloudFront, SOASTA, Incapsula, Baidu, and AppEngine).
    /// Origin-side pages (Airbnb, stock nginx/Varnish) and pure
    /// bot-mitigation vendors are not "CDNs and hosting providers".
    pub fn discovered_providers(&self) -> Vec<Provider> {
        let mut providers: Vec<Provider> = self
            .clusters
            .iter()
            .filter_map(|c| c.label)
            .map(|kind| kind.provider())
            .filter(|p| {
                !matches!(
                    p,
                    Provider::Airbnb | Provider::Nginx | Provider::Varnish | Provider::Distil
                )
            })
            .collect();
        providers.sort();
        providers.dedup();
        providers
    }

    /// Kinds for which a labelled cluster exists.
    pub fn discovered_kinds(&self) -> Vec<PageKind> {
        let mut kinds: Vec<PageKind> = self.clusters.iter().filter_map(|c| c.label).collect();
        kinds.sort();
        kinds.dedup();
        kinds
    }

    /// Clusters that explicitly signal geoblocking.
    pub fn explicit_geoblock_clusters(&self) -> Vec<&ClusterSummary> {
        self.clusters
            .iter()
            .filter(|c| {
                c.label
                    .map(|k| k.class() == PageClass::ExplicitGeoblock)
                    .unwrap_or(false)
            })
            .collect()
    }
}

/// Cluster the outlier corpus.
///
/// This is the textmine boundary: archived bodies are lossy-decoded here
/// (TF-IDF tokenisation is text-based), the one place on the pipeline
/// where UTF-8 conversion is allowed to allocate. Cluster labelling runs
/// the compiled automaton over the decoded documents.
pub fn discover(
    outliers: &[Outlier],
    archive: &BodyArchive,
    fingerprints: &CompiledFingerprintSet,
    config: &DiscoveryConfig,
) -> DiscoveryReport {
    let mut docs: Vec<String> = Vec::new();
    let mut missing_bodies = 0usize;
    for o in outliers {
        match archive.get_text(o.domain, o.country, o.sample) {
            Some(body) => docs.push(body.into_owned()),
            None => missing_bodies += 1,
        }
    }

    let (_, vectors) = TfIdfVectorizer::fit_transform(&docs, config.min_df);
    let clustering = single_link(&vectors, config.tau);

    let mut clusters = Vec::with_capacity(clustering.len());
    for (id, size) in clustering.by_size() {
        let members = &clustering.members[id as usize];
        // Label by the modal fingerprint among members (the representative
        // examination).
        let mut label_votes: std::collections::HashMap<Option<PageKind>, usize> =
            std::collections::HashMap::new();
        for &m in members.iter() {
            let label = fingerprints
                .classify_bytes(docs[m as usize].as_bytes())
                .map(|o| o.kind);
            *label_votes.entry(label).or_insert(0) += 1;
        }
        let (label, votes) = label_votes
            .into_iter()
            .max_by_key(|(_, v)| *v)
            .expect("non-empty cluster");
        let representative = members[0] as usize;
        let excerpt: String = docs[representative].chars().take(160).collect();
        clusters.push(ClusterSummary {
            id,
            size,
            label,
            purity: votes as f64 / size as f64,
            excerpt,
        });
    }

    DiscoveryReport {
        clusters,
        corpus_size: docs.len(),
        missing_bodies,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoblock_blockpages::{render, PageParams};
    use geoblock_http::Url;

    fn archive_with_pages() -> (Vec<Outlier>, BodyArchive) {
        let mut archive = BodyArchive::new();
        let mut outliers = Vec::new();
        let kinds = [
            PageKind::Cloudflare,
            PageKind::Akamai,
            PageKind::Incapsula,
            PageKind::DistilCaptcha,
        ];
        let mut sample = 0u16;
        for (ki, kind) in kinds.iter().enumerate() {
            for i in 0..30u64 {
                let params = PageParams::new(
                    &format!("site{i}.com"),
                    "Iran",
                    "5.1.2.3",
                    i * 31 + ki as u64,
                );
                let resp = render(*kind, &params).finish(Url::http("x.com"));
                let body = resp.body.bytes().clone();
                archive.offer(ki as u32, i as u16, sample, body.len() as u32, &body);
                outliers.push(Outlier {
                    domain: ki as u32,
                    country: i as u16,
                    sample,
                    len: body.len() as u32,
                });
                sample += 1;
            }
        }
        (outliers, archive)
    }

    #[test]
    fn families_form_labelled_clusters() {
        let (outliers, archive) = archive_with_pages();
        let report = discover(
            &outliers,
            &archive,
            &CompiledFingerprintSet::paper(),
            &DiscoveryConfig::default(),
        );
        assert_eq!(report.corpus_size, 120);
        assert_eq!(report.missing_bodies, 0);
        let kinds = report.discovered_kinds();
        for kind in [
            PageKind::Cloudflare,
            PageKind::Akamai,
            PageKind::Incapsula,
            PageKind::DistilCaptcha,
        ] {
            assert!(kinds.contains(&kind), "missing {kind}: {kinds:?}");
        }
        // Each family should be a near-pure cluster.
        for c in &report.clusters {
            if c.label.is_some() {
                assert!(c.purity > 0.9, "cluster {} purity {}", c.id, c.purity);
            }
        }
    }

    #[test]
    fn discovered_providers_exclude_origin_pages() {
        let mut archive = BodyArchive::new();
        let mut outliers = Vec::new();
        for (i, kind) in [PageKind::Airbnb, PageKind::Nginx403, PageKind::Cloudflare]
            .iter()
            .enumerate()
        {
            for j in 0..5u16 {
                let params = PageParams::new("d.com", "Syria", "5.0.0.1", j as u64);
                let body = render(*kind, &params)
                    .finish(Url::http("d.com"))
                    .body
                    .into_bytes();
                archive.offer(i as u32, j, 0, body.len() as u32, &body);
                outliers.push(Outlier {
                    domain: i as u32,
                    country: j,
                    sample: 0,
                    len: body.len() as u32,
                });
            }
        }
        let report = discover(
            &outliers,
            &archive,
            &CompiledFingerprintSet::paper(),
            &DiscoveryConfig::default(),
        );
        let providers = report.discovered_providers();
        assert_eq!(providers, vec![Provider::Cloudflare]);
        // But the kinds list still names Airbnb and nginx.
        assert!(report.discovered_kinds().contains(&PageKind::Airbnb));
    }

    #[test]
    fn missing_bodies_are_counted() {
        let archive = BodyArchive::new();
        let outliers = vec![Outlier {
            domain: 0,
            country: 0,
            sample: 0,
            len: 100,
        }];
        let report = discover(
            &outliers,
            &archive,
            &CompiledFingerprintSet::paper(),
            &DiscoveryConfig::default(),
        );
        assert_eq!(report.missing_bodies, 1);
        assert_eq!(report.corpus_size, 0);
        assert!(report.clusters.is_empty());
    }
}
