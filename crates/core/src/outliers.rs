//! The page-length outlier heuristic (§4.1.2, evaluated in §4.1.5).
//!
//! For each domain, the *representative length* is the longest response
//! observed across the top blocking countries; any sample whose length is
//! ≥30% shorter is extracted as a possible block page. The heuristic is a
//! recall-oriented pre-filter for clustering — Table 2 measures how much
//! of each fingerprint family it recalls (58.3% overall), and Figure 2
//! shows why the exact cutoff barely matters between 5% and 50%.

use geoblock_blockpages::PageKind;
use geoblock_worldgen::CountryCode;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

use crate::observation::SampleStore;

/// Heuristic configuration.
#[derive(Debug, Clone)]
pub struct OutlierConfig {
    /// Relative-shortness cutoff (0.30 in the paper).
    pub cutoff: f64,
    /// The countries over which representatives are computed and outliers
    /// extracted (the paper's "top 20 geoblocking countries").
    pub rep_countries: Vec<CountryCode>,
}

/// One extracted outlier sample.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Outlier {
    /// Domain index in the store.
    pub domain: u32,
    /// Country index in the store.
    pub country: u16,
    /// Sample index within the cell.
    pub sample: u16,
    /// Sample length in bytes.
    pub len: u32,
}

/// The heuristic's output plus the evaluation counters for Table 2 and
/// Figure 2.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OutlierReport {
    /// Representative length per domain index (None when the domain never
    /// responded in a representative country).
    pub representative: Vec<Option<u32>>,
    /// Extracted outlier samples.
    pub outliers: Vec<Outlier>,
    /// Samples inspected in the representative countries.
    pub inspected: usize,
    /// Per-fingerprint recall counters over the *whole* store:
    /// `(recalled, actual)` per page kind — Table 2's columns.
    pub recall: HashMap<PageKind, (u32, u32)>,
    /// Relative size differences `(1 - len/rep)` for all responding
    /// samples, paired with whether the sample matched a block fingerprint
    /// — Figure 2's raw series (subsampled to every 7th ordinary page to
    /// bound memory).
    pub size_diffs: Vec<(f32, bool)>,
}

impl OutlierReport {
    /// Overall recall across kinds (Table 2's "Total" row).
    pub fn total_recall(&self) -> (u32, u32) {
        self.recall
            .values()
            .fold((0, 0), |(r, a), (rr, aa)| (r + rr, a + aa))
    }

    /// Outlier fraction among inspected samples (§4.1.2 reports 5.1%).
    pub fn outlier_rate(&self) -> f64 {
        if self.inspected == 0 {
            0.0
        } else {
            self.outliers.len() as f64 / self.inspected as f64
        }
    }
}

/// Run the heuristic over a baseline store.
pub fn extract_outliers(store: &SampleStore, config: &OutlierConfig) -> OutlierReport {
    let rep_idx: Vec<usize> = config
        .rep_countries
        .iter()
        .filter_map(|c| store.country_index(*c))
        .collect();

    // Representative length: longest response per domain across the
    // representative countries.
    let mut representative: Vec<Option<u32>> = vec![None; store.domains.len()];
    for (d, rep) in representative.iter_mut().enumerate() {
        let mut max = None;
        for &c in &rep_idx {
            for obs in store.cell(d, c) {
                if let Some(len) = obs.body_len() {
                    max = Some(max.map_or(len, |m: u32| m.max(len)));
                }
            }
        }
        *rep = max;
    }

    let mut outliers = Vec::new();
    let mut inspected = 0usize;
    for (d, rep) in representative.iter().enumerate() {
        let Some(rep) = *rep else { continue };
        for &c in &rep_idx {
            for (s, obs) in store.cell(d, c).iter().enumerate() {
                let Some(len) = obs.body_len() else { continue };
                inspected += 1;
                if is_outlier(len, rep, config.cutoff) {
                    outliers.push(Outlier {
                        domain: d as u32,
                        country: c as u16,
                        sample: s as u16,
                        len,
                    });
                }
            }
        }
    }

    // Evaluation over the whole store: recall per fingerprint and the
    // Figure 2 size-difference series.
    let mut recall: HashMap<PageKind, (u32, u32)> = HashMap::new();
    let mut size_diffs = Vec::new();
    let mut ordinary_tick = 0usize;
    for (d, _c, samples) in store.iter_cells() {
        let Some(rep) = representative[d] else {
            continue;
        };
        for obs in samples {
            let Some(len) = obs.body_len() else { continue };
            let diff = 1.0 - len as f64 / rep as f64;
            match obs.page() {
                Some(kind) => {
                    let entry = recall.entry(kind).or_insert((0, 0));
                    entry.1 += 1;
                    if is_outlier(len, rep, config.cutoff) {
                        entry.0 += 1;
                    }
                    size_diffs.push((diff as f32, true));
                }
                None => {
                    ordinary_tick += 1;
                    if ordinary_tick.is_multiple_of(7) {
                        size_diffs.push((diff as f32, false));
                    }
                }
            }
        }
    }

    OutlierReport {
        representative,
        outliers,
        inspected,
        recall,
        size_diffs,
    }
}

/// The outlier predicate: `len` is at least `cutoff` shorter than `rep`.
pub fn is_outlier(len: u32, rep: u32, cutoff: f64) -> bool {
    rep > 0 && (len as f64) <= (1.0 - cutoff) * rep as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observation::Obs;
    use geoblock_worldgen::cc;

    fn resp(len: u32, page: Option<PageKind>) -> Obs {
        Obs::Response {
            status: if page.is_some() { 403 } else { 200 },
            len,
            page,
        }
    }

    fn store() -> (SampleStore, OutlierConfig) {
        let mut s = SampleStore::new(
            vec!["big.com".into(), "blocked.com".into()],
            vec![cc("IR"), cc("US"), cc("DE")],
        );
        // big.com: 10k representative, one 30%-short natural variant in IR.
        s.push(0, 0, resp(6_900, None));
        s.push(0, 0, resp(10_000, None));
        s.push(0, 1, resp(9_800, None));
        // blocked.com: blocked in IR (1.5k page), real 8k elsewhere.
        s.push(1, 0, resp(1_500, Some(PageKind::Cloudflare)));
        s.push(1, 1, resp(8_000, None));
        s.push(1, 2, resp(8_000, None));
        let config = OutlierConfig {
            cutoff: 0.30,
            rep_countries: vec![cc("IR"), cc("US")],
        };
        (s, config)
    }

    #[test]
    fn representative_is_longest_in_rep_countries() {
        let (s, config) = store();
        let report = extract_outliers(&s, &config);
        assert_eq!(report.representative[0], Some(10_000));
        assert_eq!(report.representative[1], Some(8_000));
    }

    #[test]
    fn extracts_short_samples_in_rep_countries_only() {
        let (s, config) = store();
        let report = extract_outliers(&s, &config);
        // big.com's 6.9k (31% short) and blocked.com's 1.5k page.
        assert_eq!(report.outliers.len(), 2);
        assert!(report
            .outliers
            .iter()
            .any(|o| o.domain == 1 && o.len == 1_500));
        assert!(report
            .outliers
            .iter()
            .any(|o| o.domain == 0 && o.len == 6_900));
    }

    #[test]
    fn germany_is_outside_rep_countries() {
        let (mut s, config) = store();
        // A short sample in DE must not be extracted.
        s.push(0, 2, resp(1_000, None));
        let report = extract_outliers(&s, &config);
        assert!(report.outliers.iter().all(|o| o.country != 2));
    }

    #[test]
    fn recall_counts_block_pages_globally() {
        let (s, config) = store();
        let report = extract_outliers(&s, &config);
        let (recalled, actual) = report.recall[&PageKind::Cloudflare];
        assert_eq!((recalled, actual), (1, 1));
        assert_eq!(report.total_recall(), (1, 1));
    }

    #[test]
    fn recall_misses_blocks_when_rep_is_itself_a_block() {
        // A domain blocked in *all* representative countries: the rep is
        // the block page, so the heuristic cannot see the block — the
        // §4.1.5 false-negative mechanism.
        let mut s = SampleStore::new(vec!["all.com".into()], vec![cc("IR"), cc("SY")]);
        s.push(0, 0, resp(1_500, Some(PageKind::Akamai)));
        s.push(0, 1, resp(1_480, Some(PageKind::Akamai)));
        let config = OutlierConfig {
            cutoff: 0.30,
            rep_countries: vec![cc("IR"), cc("SY")],
        };
        let report = extract_outliers(&s, &config);
        let (recalled, actual) = report.recall[&PageKind::Akamai];
        assert_eq!(actual, 2);
        assert_eq!(recalled, 0);
        assert!(report.outliers.is_empty());
    }

    #[test]
    fn outlier_predicate_boundary() {
        assert!(is_outlier(700, 1000, 0.30));
        assert!(!is_outlier(701, 1000, 0.30));
        assert!(!is_outlier(1000, 0, 0.30));
    }

    #[test]
    fn size_diffs_mark_block_pages() {
        let (s, config) = store();
        let report = extract_outliers(&s, &config);
        let blocked: Vec<_> = report.size_diffs.iter().filter(|(_, b)| *b).collect();
        assert_eq!(blocked.len(), 1);
        assert!(blocked[0].0 > 0.8, "block page diff {}", blocked[0].0);
    }
}
