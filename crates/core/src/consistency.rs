//! Consistency scores for non-explicit blockers (§5.2.2).
//!
//! Akamai and Incapsula serve the same page for geoblocking and for abuse
//! blocking. The paper's conservative rule: a country is *consistent* when
//! ≥80% of its samples return the block page; a domain's score is the
//! fraction of block-page-seeing countries that are consistent; only
//! domains at 100% consistency that are *not* blocked everywhere count as
//! geoblocking.

use geoblock_blockpages::PageKind;
use geoblock_worldgen::CountryCode;
use serde::{Deserialize, Serialize};

use crate::observation::SampleStore;

/// Per-domain consistency analysis for one ambiguous page kind.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConsistencyReport {
    /// The domain.
    pub domain: String,
    /// The ambiguous page kind analysed.
    pub kind: PageKind,
    /// Fraction of block-page-seeing countries that are consistent.
    pub score: f64,
    /// Countries that consistently (≥80%) see the block page.
    pub consistent_countries: Vec<CountryCode>,
    /// Countries that saw the page at least once.
    pub seeing_countries: usize,
    /// Countries with at least one response for this domain.
    pub responding_countries: usize,
}

impl ConsistencyReport {
    /// The paper's conservative geoblocking criterion: perfect consistency
    /// and not blocked in every responding country.
    pub fn is_confirmed_geoblocker(&self) -> bool {
        self.score >= 1.0
            && !self.consistent_countries.is_empty()
            && self.consistent_countries.len() < self.responding_countries
    }
}

/// Country-level consistency threshold.
const COUNTRY_CONSISTENT: f64 = 0.80;

/// Compute per-domain consistency for `kind` over all domains that saw the
/// page at least once.
pub fn consistency_scores(store: &SampleStore, kind: PageKind) -> Vec<ConsistencyReport> {
    let mut out = Vec::new();
    for d in 0..store.domains.len() {
        let mut seeing = 0usize;
        let mut consistent = Vec::new();
        let mut responding = 0usize;
        for (c, country) in store.countries.iter().enumerate() {
            let samples = store.cell(d, c);
            let responses = samples.iter().filter(|o| o.responded()).count();
            if responses == 0 {
                continue;
            }
            responding += 1;
            let blocks = samples.iter().filter(|o| o.page() == Some(kind)).count();
            if blocks == 0 {
                continue;
            }
            seeing += 1;
            if blocks as f64 / samples.len() as f64 >= COUNTRY_CONSISTENT {
                consistent.push(*country);
            }
        }
        if seeing == 0 {
            continue;
        }
        out.push(ConsistencyReport {
            domain: store.domains[d].clone(),
            kind,
            score: consistent.len() as f64 / seeing as f64,
            consistent_countries: consistent,
            seeing_countries: seeing,
            responding_countries: responding,
        });
    }
    out
}

/// The confirmed ambiguous-CDN geoblockers.
pub fn confirmed_geoblockers(reports: &[ConsistencyReport]) -> Vec<&ConsistencyReport> {
    reports
        .iter()
        .filter(|r| r.is_confirmed_geoblocker())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observation::Obs;
    use geoblock_worldgen::cc;

    fn block() -> Obs {
        Obs::Response {
            status: 403,
            len: 400,
            page: Some(PageKind::Akamai),
        }
    }

    fn ok() -> Obs {
        Obs::Response {
            status: 200,
            len: 9000,
            page: None,
        }
    }

    fn store() -> SampleStore {
        SampleStore::new(
            vec!["a.com".into()],
            vec![cc("CN"), cc("RU"), cc("US"), cc("DE")],
        )
    }

    #[test]
    fn clean_geoblocker_scores_one() {
        let mut s = store();
        for _ in 0..20 {
            s.push(0, 0, block()); // CN always blocked
            s.push(0, 1, block()); // RU always blocked
            s.push(0, 2, ok());
            s.push(0, 3, ok());
        }
        let reports = consistency_scores(&s, PageKind::Akamai);
        assert_eq!(reports.len(), 1);
        let r = &reports[0];
        assert_eq!(r.score, 1.0);
        assert_eq!(r.consistent_countries, vec![cc("CN"), cc("RU")]);
        assert!(r.is_confirmed_geoblocker());
    }

    #[test]
    fn paper_worked_example() {
        // "three countries each seeing 90% of samples returning a block
        // page and one country with 20% block pages → 75%".
        let mut s = store();
        for c in 0..3 {
            for i in 0..10 {
                s.push(0, c, if i < 9 { block() } else { ok() });
            }
        }
        for i in 0..10 {
            s.push(0, 3, if i < 2 { block() } else { ok() });
        }
        let reports = consistency_scores(&s, PageKind::Akamai);
        assert!((reports[0].score - 0.75).abs() < 1e-9);
        assert!(!reports[0].is_confirmed_geoblocker());
    }

    #[test]
    fn blocked_everywhere_is_not_geoblocking() {
        // Bot detection blocks the crawler in every country: perfectly
        // consistent, but not geographic.
        let mut s = store();
        for c in 0..4 {
            for _ in 0..20 {
                s.push(0, c, block());
            }
        }
        let reports = consistency_scores(&s, PageKind::Akamai);
        assert_eq!(reports[0].score, 1.0);
        assert!(!reports[0].is_confirmed_geoblocker());
    }

    #[test]
    fn sporadic_fps_score_below_one() {
        // Random bot-detection hits: one block in 20 samples in two
        // countries — never consistent.
        let mut s = store();
        for c in 0..2 {
            s.push(0, c, block());
            for _ in 0..19 {
                s.push(0, c, ok());
            }
        }
        let reports = consistency_scores(&s, PageKind::Akamai);
        assert_eq!(reports[0].score, 0.0);
        assert!(!reports[0].is_confirmed_geoblocker());
    }

    #[test]
    fn domains_without_the_page_are_absent() {
        let mut s = store();
        s.push(0, 0, ok());
        assert!(consistency_scores(&s, PageKind::Akamai).is_empty());
    }
}
