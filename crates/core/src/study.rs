//! Study configuration and accumulation shared by every driver.
//!
//! Both campaigns (§4 Top-10K, §5 Top-1M) share one skeleton: a 3-sample
//! **baseline** pass over every (domain, country) pair, then targeted
//! **confirmation** passes. The protocol logic lives in
//! [`StudySession`](crate::session::StudySession) (with phase arithmetic
//! delegated to [`sampling`](crate::sampling) policies); this module
//! keeps the pieces every driver shares — [`StudyConfig`],
//! [`StudyResult`], [`StudyAccumulator`].
//!
//! Every pass runs on the streaming pipeline: a
//! [`TargetPlan`](crate::plan::TargetPlan) enumerates probe targets
//! lazily, [`probe_stream`](Lumscan::probe_stream) keeps at
//! most `concurrency` of them in flight, and a [`StudyAccumulator`]
//! classifies each completion the moment it lands — offering
//! representative-country bodies to the [`BodyArchive`] and dropping
//! everything else. No pass materializes a target or result vector, so
//! peak memory is O(concurrency) regardless of study scale.

use geoblock_blockpages::CompiledFingerprintSet;
use geoblock_lumscan::{ConfigError, ProbeResult};
use geoblock_worldgen::CountryCode;

use crate::classify::classify_chain;
use crate::confirm::{verdicts, ConfirmConfig, GeoblockVerdict};
use crate::observation::{BodyArchive, SampleStore};
use crate::plan::ProbeCoord;

/// Shared study configuration.
#[derive(Debug, Clone)]
pub struct StudyConfig {
    /// Vantage countries (the 177 Luminati countries at full scale).
    pub countries: Vec<CountryCode>,
    /// Baseline samples per pair (3).
    pub baseline_samples: u32,
    /// Confirmation policy (20 samples, 80%).
    pub confirm: ConfirmConfig,
    /// Representative countries for the outlier heuristic and body
    /// retention (the "top 20 geoblocking countries").
    pub rep_countries: Vec<CountryCode>,
    /// Domains per orchestrator work unit: a sharded run partitions the
    /// baseline grid along the domain axis into units of this many domains
    /// (the last may be smaller). The single-stream path ignores it — the
    /// streaming pipeline bounds in-flight memory by the engine's
    /// `concurrency` — so observations never depend on it either way (see
    /// `resample_is_chunk_invariant` and the orchestrator's shard sweep).
    ///
    /// This is the old `chunk_domains` knob, rerouted: the batch path it
    /// once configured is gone, but work-unit sizing is the same decision
    /// (how much of the domain axis moves together), so the value regains
    /// meaning here.
    pub work_unit_domains: usize,
}

impl StudyConfig {
    /// Reasonable defaults over the given countries; `rep_countries`
    /// should come from
    /// [`rank_countries`](crate::session::StudySession::rank_countries)
    /// or prior knowledge.
    pub fn new(countries: Vec<CountryCode>, rep_countries: Vec<CountryCode>) -> StudyConfig {
        StudyConfig {
            countries,
            baseline_samples: 3,
            confirm: ConfirmConfig::default(),
            rep_countries,
            work_unit_domains: 256,
        }
    }

    /// Start building a validated configuration.
    pub fn builder() -> StudyConfigBuilder {
        StudyConfigBuilder::default()
    }
}

/// Builder for [`StudyConfig`], with validation at [`build`] time.
///
/// [`build`]: StudyConfigBuilder::build
#[derive(Debug, Clone, Default)]
pub struct StudyConfigBuilder {
    countries: Vec<CountryCode>,
    rep_countries: Vec<CountryCode>,
    baseline_samples: Option<u32>,
    confirm: Option<ConfirmConfig>,
    work_unit_domains: Option<usize>,
}

impl StudyConfigBuilder {
    /// Vantage countries (required, non-empty).
    pub fn countries(mut self, countries: impl IntoIterator<Item = CountryCode>) -> Self {
        self.countries = countries.into_iter().collect();
        self
    }

    /// Representative countries for outlier heuristics and body retention.
    pub fn rep_countries(mut self, countries: impl IntoIterator<Item = CountryCode>) -> Self {
        self.rep_countries = countries.into_iter().collect();
        self
    }

    /// Baseline samples per (domain, country) pair (default 3).
    pub fn baseline_samples(mut self, n: u32) -> Self {
        self.baseline_samples = Some(n);
        self
    }

    /// Confirmation policy.
    pub fn confirm(mut self, confirm: ConfirmConfig) -> Self {
        self.confirm = Some(confirm);
        self
    }

    /// Domains per orchestrator work unit (default 256).
    pub fn work_unit_domains(mut self, n: usize) -> Self {
        self.work_unit_domains = Some(n);
        self
    }

    /// Validate and build.
    pub fn build(self) -> Result<StudyConfig, ConfigError> {
        if self.countries.is_empty() {
            return Err(ConfigError::new(
                "countries",
                "a study needs at least one vantage country",
            ));
        }
        let baseline_samples = self.baseline_samples.unwrap_or(3);
        if baseline_samples == 0 {
            return Err(ConfigError::new(
                "baseline_samples",
                "baseline needs at least one sample per pair",
            ));
        }
        let work_unit_domains = self.work_unit_domains.unwrap_or(256);
        if work_unit_domains == 0 {
            return Err(ConfigError::new(
                "work_unit_domains",
                "a work unit needs at least one domain",
            ));
        }
        for rep in &self.rep_countries {
            if !self.countries.contains(rep) {
                return Err(ConfigError::new(
                    "rep_countries",
                    format!("representative country {rep} is not a vantage country"),
                ));
            }
        }
        Ok(StudyConfig {
            countries: self.countries,
            baseline_samples,
            confirm: self.confirm.unwrap_or_default(),
            rep_countries: self.rep_countries,
            work_unit_domains,
        })
    }
}

/// The accumulated data of a study.
#[derive(Debug)]
pub struct StudyResult {
    /// All observations (baseline + confirmation merged).
    pub store: SampleStore,
    /// Retained raw documents for discovery.
    pub archive: BodyArchive,
}

impl StudyResult {
    /// Confirmed explicit-geoblocking verdicts under the study's policy.
    pub fn verdicts(&self, confirm: &ConfirmConfig) -> Vec<GeoblockVerdict> {
        verdicts(&self.store, confirm)
    }
}

/// The eager downstream half of a study pass: consumes `(coordinate,
/// result)` completions one at a time, classifies them via
/// [`classify_chain`], offers representative-country bodies to the
/// [`BodyArchive`], and records the observation — then the result is
/// dropped. Holding one of these (plus the store it fills) is all the
/// state a streaming pass needs.
///
/// Completions must be absorbed in *probe order*: archive retention is
/// order-dependent (each offer updates the per-domain length ceiling), so
/// study passes drive this from an
/// [`ordered`](geoblock_lumscan::ProbeStream::ordered) stream.
pub struct StudyAccumulator<'a> {
    fingerprints: &'a CompiledFingerprintSet,
    /// `rep[c]` — is country index `c` a representative country?
    rep: Vec<bool>,
    store: &'a mut SampleStore,
    archive: Option<&'a mut BodyArchive>,
}

impl<'a> StudyAccumulator<'a> {
    /// An accumulator filling `store` (and `archive`, when given) for a
    /// pass over `countries`, retaining bodies only from `rep_countries`.
    pub fn new(
        fingerprints: &'a CompiledFingerprintSet,
        countries: &[CountryCode],
        rep_countries: &[CountryCode],
        store: &'a mut SampleStore,
        archive: Option<&'a mut BodyArchive>,
    ) -> StudyAccumulator<'a> {
        StudyAccumulator {
            fingerprints,
            rep: countries
                .iter()
                .map(|c| rep_countries.contains(c))
                .collect(),
            store,
            archive,
        }
    }

    /// Classify one completion and retain what the study keeps; everything
    /// else in `result` is dropped when the caller releases it.
    pub fn absorb(&mut self, coord: ProbeCoord, result: &ProbeResult) {
        let obs = classify_chain(self.fingerprints, &result.outcome);
        if let Some(archive) = self.archive.as_deref_mut() {
            if self.rep[coord.country] {
                if let Ok(chain) = &result.outcome {
                    let resp = chain.final_response();
                    archive.offer(
                        coord.domain as u32,
                        coord.country as u16,
                        coord.sample as u16,
                        resp.body.len() as u32,
                        resp.body.bytes(),
                    );
                }
            }
        }
        self.store.push(coord.domain, coord.country, obs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoblock_worldgen::cc;

    #[test]
    fn builder_defaults_match_new() {
        let built = StudyConfig::builder()
            .countries([cc("IR"), cc("US")])
            .rep_countries([cc("IR")])
            .build()
            .unwrap();
        let legacy = StudyConfig::new(vec![cc("IR"), cc("US")], vec![cc("IR")]);
        assert_eq!(built.baseline_samples, legacy.baseline_samples);
        assert_eq!(built.work_unit_domains, legacy.work_unit_domains);
        assert_eq!(built.countries, legacy.countries);
    }

    #[test]
    fn builder_rejects_bad_configs() {
        assert_eq!(
            StudyConfig::builder().build().unwrap_err().field,
            "countries"
        );
        assert_eq!(
            StudyConfig::builder()
                .countries([cc("US")])
                .baseline_samples(0)
                .build()
                .unwrap_err()
                .field,
            "baseline_samples"
        );
        assert_eq!(
            StudyConfig::builder()
                .countries([cc("US")])
                .work_unit_domains(0)
                .build()
                .unwrap_err()
                .field,
            "work_unit_domains"
        );
        assert_eq!(
            StudyConfig::builder()
                .countries([cc("US")])
                .rep_countries([cc("IR")])
                .build()
                .unwrap_err()
                .field,
            "rep_countries"
        );
    }
}
