//! Study configuration and accumulation shared by every driver, plus the
//! deprecated pre-[`StudySession`] driver surface.
//!
//! Both campaigns (§4 Top-10K, §5 Top-1M) share one skeleton: a 3-sample
//! **baseline** pass over every (domain, country) pair, then targeted
//! **confirmation** passes. The protocol logic lives in
//! [`StudySession`](crate::session::StudySession); this module keeps the
//! pieces every driver shares — [`StudyConfig`], [`StudyResult`],
//! [`StudyAccumulator`] — and the old driver types ([`Top10kStudy`],
//! [`Top1mStudy`], [`rank_blocking_countries`]) as deprecated shims that
//! delegate to a session. The shims survive one release; migrate:
//!
//! ```ignore
//! // before                                   // after
//! let study = Top10kStudy::new(engine, cfg);  let mut s = StudySession::new(engine, cfg);
//! study.baseline_with(&domains, &mut sink)    s = s.sink(&mut sink);
//!     .await;                                 s.baseline(&domains).await;
//! study.confirm_explicit(&mut result).await;  s.confirm(&mut result).await;
//! ```
//!
//! Every pass runs on the streaming pipeline: a
//! [`TargetPlan`](crate::plan::TargetPlan) enumerates probe targets
//! lazily, [`probe_stream`](Lumscan::probe_stream) keeps at
//! most `concurrency` of them in flight, and a [`StudyAccumulator`]
//! classifies each completion the moment it lands — offering
//! representative-country bodies to the [`BodyArchive`] and dropping
//! everything else. No pass materializes a target or result vector, so
//! peak memory is O(concurrency) regardless of study scale.

use std::sync::Arc;

use geoblock_blockpages::{CompiledFingerprintSet, PageKind};
use geoblock_lumscan::{ConfigError, Lumscan, ProbeResult, ProbeSink, Transport};
use geoblock_worldgen::CountryCode;

use crate::classify::classify_chain;
use crate::confirm::{verdicts, ConfirmConfig, GeoblockVerdict};
use crate::observation::{BodyArchive, SampleStore};
use crate::plan::ProbeCoord;
use crate::session::StudySession;

/// Shared study configuration.
#[derive(Debug, Clone)]
pub struct StudyConfig {
    /// Vantage countries (the 177 Luminati countries at full scale).
    pub countries: Vec<CountryCode>,
    /// Baseline samples per pair (3).
    pub baseline_samples: u32,
    /// Confirmation policy (20 samples, 80%).
    pub confirm: ConfirmConfig,
    /// Representative countries for the outlier heuristic and body
    /// retention (the "top 20 geoblocking countries").
    pub rep_countries: Vec<CountryCode>,
    /// Domains per orchestrator work unit: a sharded run partitions the
    /// baseline grid along the domain axis into units of this many domains
    /// (the last may be smaller). The single-stream path ignores it — the
    /// streaming pipeline bounds in-flight memory by the engine's
    /// `concurrency` — so observations never depend on it either way (see
    /// `resample_is_chunk_invariant` and the orchestrator's shard sweep).
    ///
    /// This is the old `chunk_domains` knob, rerouted: the batch path it
    /// once configured is gone, but work-unit sizing is the same decision
    /// (how much of the domain axis moves together), so the value regains
    /// meaning here.
    pub work_unit_domains: usize,
}

impl StudyConfig {
    /// Reasonable defaults over the given countries; `rep_countries`
    /// should come from [`rank_blocking_countries`] or prior knowledge.
    pub fn new(countries: Vec<CountryCode>, rep_countries: Vec<CountryCode>) -> StudyConfig {
        StudyConfig {
            countries,
            baseline_samples: 3,
            confirm: ConfirmConfig::default(),
            rep_countries,
            work_unit_domains: 256,
        }
    }

    /// Start building a validated configuration.
    pub fn builder() -> StudyConfigBuilder {
        StudyConfigBuilder::default()
    }
}

/// Builder for [`StudyConfig`], with validation at [`build`] time.
///
/// [`build`]: StudyConfigBuilder::build
#[derive(Debug, Clone, Default)]
pub struct StudyConfigBuilder {
    countries: Vec<CountryCode>,
    rep_countries: Vec<CountryCode>,
    baseline_samples: Option<u32>,
    confirm: Option<ConfirmConfig>,
    work_unit_domains: Option<usize>,
}

impl StudyConfigBuilder {
    /// Vantage countries (required, non-empty).
    pub fn countries(mut self, countries: impl IntoIterator<Item = CountryCode>) -> Self {
        self.countries = countries.into_iter().collect();
        self
    }

    /// Representative countries for outlier heuristics and body retention.
    pub fn rep_countries(mut self, countries: impl IntoIterator<Item = CountryCode>) -> Self {
        self.rep_countries = countries.into_iter().collect();
        self
    }

    /// Baseline samples per (domain, country) pair (default 3).
    pub fn baseline_samples(mut self, n: u32) -> Self {
        self.baseline_samples = Some(n);
        self
    }

    /// Confirmation policy.
    pub fn confirm(mut self, confirm: ConfirmConfig) -> Self {
        self.confirm = Some(confirm);
        self
    }

    /// Domains per orchestrator work unit (default 256).
    pub fn work_unit_domains(mut self, n: usize) -> Self {
        self.work_unit_domains = Some(n);
        self
    }

    /// Validate and build.
    pub fn build(self) -> Result<StudyConfig, ConfigError> {
        if self.countries.is_empty() {
            return Err(ConfigError::new(
                "countries",
                "a study needs at least one vantage country",
            ));
        }
        let baseline_samples = self.baseline_samples.unwrap_or(3);
        if baseline_samples == 0 {
            return Err(ConfigError::new(
                "baseline_samples",
                "baseline needs at least one sample per pair",
            ));
        }
        let work_unit_domains = self.work_unit_domains.unwrap_or(256);
        if work_unit_domains == 0 {
            return Err(ConfigError::new(
                "work_unit_domains",
                "a work unit needs at least one domain",
            ));
        }
        for rep in &self.rep_countries {
            if !self.countries.contains(rep) {
                return Err(ConfigError::new(
                    "rep_countries",
                    format!("representative country {rep} is not a vantage country"),
                ));
            }
        }
        Ok(StudyConfig {
            countries: self.countries,
            baseline_samples,
            confirm: self.confirm.unwrap_or_default(),
            rep_countries: self.rep_countries,
            work_unit_domains,
        })
    }
}

/// The accumulated data of a study.
#[derive(Debug)]
pub struct StudyResult {
    /// All observations (baseline + confirmation merged).
    pub store: SampleStore,
    /// Retained raw documents for discovery.
    pub archive: BodyArchive,
}

impl StudyResult {
    /// Confirmed explicit-geoblocking verdicts under the study's policy.
    pub fn verdicts(&self, confirm: &ConfirmConfig) -> Vec<GeoblockVerdict> {
        verdicts(&self.store, confirm)
    }
}

/// The eager downstream half of a study pass: consumes `(coordinate,
/// result)` completions one at a time, classifies them via
/// [`classify_chain`], offers representative-country bodies to the
/// [`BodyArchive`], and records the observation — then the result is
/// dropped. Holding one of these (plus the store it fills) is all the
/// state a streaming pass needs.
///
/// Completions must be absorbed in *probe order*: archive retention is
/// order-dependent (each offer updates the per-domain length ceiling), so
/// study passes drive this from an
/// [`ordered`](geoblock_lumscan::ProbeStream::ordered) stream.
pub struct StudyAccumulator<'a> {
    fingerprints: &'a CompiledFingerprintSet,
    /// `rep[c]` — is country index `c` a representative country?
    rep: Vec<bool>,
    store: &'a mut SampleStore,
    archive: Option<&'a mut BodyArchive>,
}

impl<'a> StudyAccumulator<'a> {
    /// An accumulator filling `store` (and `archive`, when given) for a
    /// pass over `countries`, retaining bodies only from `rep_countries`.
    pub fn new(
        fingerprints: &'a CompiledFingerprintSet,
        countries: &[CountryCode],
        rep_countries: &[CountryCode],
        store: &'a mut SampleStore,
        archive: Option<&'a mut BodyArchive>,
    ) -> StudyAccumulator<'a> {
        StudyAccumulator {
            fingerprints,
            rep: countries
                .iter()
                .map(|c| rep_countries.contains(c))
                .collect(),
            store,
            archive,
        }
    }

    /// Classify one completion and retain what the study keeps; everything
    /// else in `result` is dropped when the caller releases it.
    pub fn absorb(&mut self, coord: ProbeCoord, result: &ProbeResult) {
        let obs = classify_chain(self.fingerprints, &result.outcome);
        if let Some(archive) = self.archive.as_deref_mut() {
            if self.rep[coord.country] {
                if let Ok(chain) = &result.outcome {
                    let resp = chain.final_response();
                    archive.offer(
                        coord.domain as u32,
                        coord.country as u16,
                        coord.sample as u16,
                        resp.body.len() as u32,
                        resp.body.bytes(),
                    );
                }
            }
        }
        self.store.push(coord.domain, coord.country, obs);
    }
}

/// The pre-session study driver, now a shim over
/// [`StudySession`](crate::session::StudySession).
///
/// Every method builds a one-shot session per call, so behaviour is
/// probe-for-probe identical to the session API (the
/// `session_matches_the_deprecated_driver_exactly` test pins this).
#[deprecated(
    since = "0.1.0",
    note = "use geoblock_core::StudySession, which carries observers through every pass"
)]
pub struct Top10kStudy<T: Transport + 'static> {
    engine: Arc<Lumscan<T>>,
    config: StudyConfig,
}

/// Alias for the §5 campaign: identical machinery, different domain list
/// and confirmation strategy (ambiguous kinds are confirmed across *all*
/// countries).
#[deprecated(since = "0.1.0", note = "use geoblock_core::StudySession")]
#[allow(deprecated)]
pub type Top1mStudy<T> = Top10kStudy<T>;

#[allow(deprecated)]
impl<T: Transport + 'static> Top10kStudy<T> {
    /// Create a driver.
    pub fn new(engine: Arc<Lumscan<T>>, config: StudyConfig) -> Top10kStudy<T> {
        Top10kStudy { engine, config }
    }

    /// The configuration.
    pub fn config(&self) -> &StudyConfig {
        &self.config
    }

    /// The probing engine.
    pub fn engine(&self) -> &Arc<Lumscan<T>> {
        &self.engine
    }

    fn session(&self) -> StudySession<'static, T> {
        StudySession::new(self.engine.clone(), self.config.clone())
    }

    /// Run the baseline pass: `baseline_samples` probes of every
    /// (domain, country) pair.
    pub async fn baseline(&self, domains: &[String]) -> StudyResult {
        self.session().baseline(domains).await
    }

    /// [`Top10kStudy::baseline`] with an observer — in the session API the
    /// observer attaches once, via
    /// [`sink`](crate::session::StudySession::sink).
    pub async fn baseline_with(&self, domains: &[String], sink: &mut dyn ProbeSink) -> StudyResult {
        let mut session = StudySession::new(self.engine.clone(), self.config.clone()).sink(sink);
        session.baseline(domains).await
    }

    /// Confirmation pass for explicit geoblockers (§4.1.4); see
    /// [`confirm`](crate::session::StudySession::confirm).
    pub async fn confirm_explicit(&self, result: &mut StudyResult) -> usize {
        self.session().confirm(result).await
    }

    /// Confirmation pass for ambiguous kinds (§5.1.2); see
    /// [`confirm_ambiguous`](crate::session::StudySession::confirm_ambiguous).
    pub async fn confirm_ambiguous(&self, result: &mut StudyResult, kinds: &[PageKind]) -> usize {
        self.session().confirm_ambiguous(result, kinds).await
    }

    /// Resample arbitrary pairs `n` times each; see
    /// [`resample`](crate::session::StudySession::resample).
    pub async fn resample(&self, result: &mut StudyResult, pairs: &[(usize, usize)], n: usize) {
        self.session().resample(result, pairs, n).await
    }

    /// [`Top10kStudy::resample`] with an observer.
    pub async fn resample_with(
        &self,
        result: &mut StudyResult,
        pairs: &[(usize, usize)],
        n: usize,
        sink: &mut dyn ProbeSink,
    ) {
        let mut session = StudySession::new(self.engine.clone(), self.config.clone()).sink(sink);
        session.resample(result, pairs, n).await
    }
}

/// Rank countries by observed explicit blocking; shim over
/// [`rank_countries`](crate::session::StudySession::rank_countries).
#[deprecated(
    since = "0.1.0",
    note = "use StudySession::rank_countries, which also reports to attached observers"
)]
pub async fn rank_blocking_countries<T: Transport + 'static>(
    engine: &Arc<Lumscan<T>>,
    domains: &[String],
    countries: &[CountryCode],
    top: usize,
) -> Vec<CountryCode> {
    // The session's vantage panel is irrelevant to ranking, but its config
    // must validate, so the candidate list doubles as the panel.
    let config = StudyConfig::new(countries.to_vec(), Vec::new());
    StudySession::new(engine.clone(), config)
        .rank_countries(domains, countries, top)
        .await
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use geoblock_http::{FetchError, Response, StatusCode};
    use geoblock_lumscan::{LumscanConfig, TransportRequest};
    use geoblock_worldgen::cc;

    /// A toy internet: `blocked.com` serves a Cloudflare 1009 page in IR,
    /// content elsewhere; `plain.com` always serves content.
    struct ToyNet;

    impl Transport for ToyNet {
        async fn fetch_one(&self, req: TransportRequest) -> Result<Response, FetchError> {
            let host = req.request.effective_host();
            if host == "lumtest.io" {
                return Ok(Response::builder(StatusCode::OK)
                    .body(format!("country={}", req.country))
                    .finish(req.request.url));
            }
            let blocked = host == "blocked.com" && req.country == cc("IR");
            if blocked {
                let params = geoblock_blockpages::PageParams::new(&host, "Iran", "5.1.1.1", 1);
                Ok(geoblock_blockpages::render(PageKind::Cloudflare, &params)
                    .finish(req.request.url))
            } else {
                Ok(Response::builder(StatusCode::OK)
                    .body("<html><body>".to_string() + &"content ".repeat(1000) + "</body></html>")
                    .finish(req.request.url))
            }
        }
    }

    fn study() -> Top10kStudy<ToyNet> {
        let engine = Arc::new(Lumscan::new(ToyNet, LumscanConfig::default()));
        let config = StudyConfig::builder()
            .countries([cc("IR"), cc("US"), cc("DE")])
            .rep_countries([cc("IR"), cc("US")])
            .build()
            .expect("valid study config");
        Top10kStudy::new(engine, config)
    }

    #[test]
    fn builder_defaults_match_new() {
        let built = StudyConfig::builder()
            .countries([cc("IR"), cc("US")])
            .rep_countries([cc("IR")])
            .build()
            .unwrap();
        let legacy = StudyConfig::new(vec![cc("IR"), cc("US")], vec![cc("IR")]);
        assert_eq!(built.baseline_samples, legacy.baseline_samples);
        assert_eq!(built.work_unit_domains, legacy.work_unit_domains);
        assert_eq!(built.countries, legacy.countries);
    }

    #[test]
    fn builder_rejects_bad_configs() {
        assert_eq!(
            StudyConfig::builder().build().unwrap_err().field,
            "countries"
        );
        assert_eq!(
            StudyConfig::builder()
                .countries([cc("US")])
                .baseline_samples(0)
                .build()
                .unwrap_err()
                .field,
            "baseline_samples"
        );
        assert_eq!(
            StudyConfig::builder()
                .countries([cc("US")])
                .work_unit_domains(0)
                .build()
                .unwrap_err()
                .field,
            "work_unit_domains"
        );
        assert_eq!(
            StudyConfig::builder()
                .countries([cc("US")])
                .rep_countries([cc("IR")])
                .build()
                .unwrap_err()
                .field,
            "rep_countries"
        );
    }

    #[tokio::test]
    async fn baseline_collects_three_samples_per_pair() {
        let s = study();
        let result = s
            .baseline(&["blocked.com".to_string(), "plain.com".to_string()])
            .await;
        assert_eq!(result.store.total_samples(), 2 * 3 * 3);
        for d in 0..2 {
            for c in 0..3 {
                assert_eq!(result.store.cell(d, c).len(), 3);
            }
        }
    }

    #[tokio::test]
    async fn full_pipeline_confirms_the_blocked_pair() {
        let s = study();
        let mut result = s
            .baseline(&["blocked.com".to_string(), "plain.com".to_string()])
            .await;
        let flagged = s.confirm_explicit(&mut result).await;
        assert_eq!(flagged, 1);
        let verdicts = result.verdicts(&s.config().confirm);
        assert_eq!(verdicts.len(), 1);
        assert_eq!(verdicts[0].domain, "blocked.com");
        assert_eq!(verdicts[0].country, cc("IR"));
        assert_eq!(verdicts[0].kind, PageKind::Cloudflare);
        assert_eq!(verdicts[0].total, 23);
    }

    #[tokio::test]
    async fn block_page_bodies_are_archived_in_rep_countries() {
        let s = study();
        let result = s.baseline(&["blocked.com".to_string()]).await;
        // IR is a rep country and its samples are block pages → retained.
        assert!(
            result.archive.len() >= 3,
            "archived {}",
            result.archive.len()
        );
        let doc = result.archive.get(0, 0, 0).expect("IR sample retained");
        assert!(String::from_utf8_lossy(doc).contains("banned the country"));
    }

    #[tokio::test]
    async fn ambiguous_confirmation_resamples_all_countries() {
        // ToyNet serves Cloudflare pages, so flag on Cloudflare to test the
        // machinery (kind choice is arbitrary here).
        let s = study();
        let mut result = s.baseline(&["blocked.com".to_string()]).await;
        let domains = s
            .confirm_ambiguous(&mut result, &[PageKind::Cloudflare])
            .await;
        assert_eq!(domains, 1);
        // Every country of the domain received 3 + 20 samples.
        for c in 0..3 {
            assert_eq!(result.store.cell(0, c).len(), 23);
        }
    }

    #[tokio::test]
    async fn resample_is_chunk_invariant() {
        // Regression for the old batch resample, which hard-coded
        // 4096-pair chunks and ignored the chunk knob. The streaming path
        // has no chunks at all: observations must be identical whatever
        // work_unit_domains says, and in-flight work is bounded by the
        // engine's concurrency, not by any chunk size.
        async fn run(work_unit_domains: usize) -> (StudyResult, geoblock_lumscan::GaugeSink) {
            let engine = Arc::new(Lumscan::new(
                ToyNet,
                LumscanConfig::builder().concurrency(4).build().unwrap(),
            ));
            let config = StudyConfig::builder()
                .countries([cc("IR"), cc("US"), cc("DE")])
                .rep_countries([cc("IR"), cc("US")])
                .work_unit_domains(work_unit_domains)
                .build()
                .unwrap();
            let s = Top10kStudy::new(engine, config);
            let mut result = s
                .baseline(&["blocked.com".to_string(), "plain.com".to_string()])
                .await;
            let pairs: Vec<(usize, usize)> =
                (0..2).flat_map(|d| (0..3).map(move |c| (d, c))).collect();
            let mut sink = geoblock_lumscan::GaugeSink::new();
            s.resample_with(&mut result, &pairs, 5, &mut sink).await;
            (result, sink)
        }
        let (small, gauge) = run(1).await;
        let (large, _) = run(4096).await;
        for ((d, c, a), (_, _, b)) in small.store.iter_cells().zip(large.store.iter_cells()) {
            assert_eq!(
                a, b,
                "cell ({d}, {c}) differs across work_unit_domains settings"
            );
        }
        assert_eq!(
            gauge.started,
            2 * 3 * 5,
            "resample probes every pair n times"
        );
        assert!(
            gauge.peak_in_flight <= 4,
            "in-flight {} exceeded engine concurrency",
            gauge.peak_in_flight
        );
    }

    #[tokio::test]
    async fn country_ranking_puts_iran_first() {
        let engine = Arc::new(Lumscan::new(ToyNet, LumscanConfig::default()));
        let ranked = rank_blocking_countries(
            &engine,
            &["blocked.com".to_string(), "plain.com".to_string()],
            &[cc("US"), cc("IR"), cc("DE")],
            2,
        )
        .await;
        assert_eq!(ranked[0], cc("IR"));
        assert_eq!(ranked.len(), 2);
    }
}
