//! Lazy target plans: the coordinate geometry of a study pass.
//!
//! Every study pass probes a regular shape — the baseline probes the full
//! `domains × countries × samples` grid, confirmation probes
//! `pairs × samples` — and the old drivers materialized that shape as a
//! target `Vec`, then recovered coordinates from flat indices with
//! duplicated `i / (nc * ns)` arithmetic at each call site. [`TargetPlan`]
//! centralizes both directions of that mapping as a *lazy* enumeration: it
//! yields [`ProbeTarget`]s on demand for the streaming pipeline and maps
//! any completion index back to its [`ProbeCoord`], so no pass ever holds a
//! full target vector.
//!
//! Index order is the order the old batch path probed in — domain-major,
//! then country, then sample — so a streaming pass replays the exact probe
//! sequence of its batch predecessor.

use geoblock_lumscan::ProbeTarget;
use geoblock_worldgen::CountryCode;

/// The (domain, country, sample) coordinate of one probe in a plan. All
/// three are indices: `domain`/`country` into the plan's slices, `sample`
/// counting repeats of the pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeCoord {
    /// Domain index.
    pub domain: usize,
    /// Country index.
    pub country: usize,
    /// Sample number within the (domain, country) pair, starting at 0.
    pub sample: usize,
}

/// A [`ProbeCoord`] qualified by which policy round produced it — the
/// coordinate system of a policy-driven run, where the same (domain,
/// country, sample) triple can recur across rounds (each round's plan
/// restarts its sample axis at 0). `ProbeCoord` stays untouched as the
/// within-round coordinate, so every existing trace and checkpoint format
/// is unchanged; round indexing wraps it rather than widening it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundCoord {
    /// Policy round index (the order [`next_round`] emitted requests).
    ///
    /// [`next_round`]: crate::sampling::SamplingPolicy::next_round
    pub round: usize,
    /// The within-round plan coordinate.
    pub coord: ProbeCoord,
}

impl RoundCoord {
    /// Coordinate `coord` of round `round`.
    pub fn new(round: usize, coord: ProbeCoord) -> RoundCoord {
        RoundCoord { round, coord }
    }

    /// The flat offset of this coordinate in a concatenation of all
    /// rounds' plans, given the probe counts of the preceding rounds and
    /// this round's plan. `None` when the coordinate is not in the plan.
    pub fn flat_index(&self, preceding_probes: usize, plan: &TargetPlan<'_>) -> Option<usize> {
        plan.index(self.coord).map(|i| preceding_probes + i)
    }
}

/// A lazy enumeration of probe targets with index↔coordinate mapping.
#[derive(Debug, Clone, Copy)]
pub struct TargetPlan<'a> {
    domains: &'a [String],
    countries: &'a [CountryCode],
    /// When set, only these (domain, country) index pairs are probed, in
    /// order; otherwise the full grid.
    pairs: Option<&'a [(usize, usize)]>,
    samples: usize,
}

impl<'a> TargetPlan<'a> {
    /// The full `domains × countries × samples` grid, domain-major.
    pub fn grid(
        domains: &'a [String],
        countries: &'a [CountryCode],
        samples: usize,
    ) -> TargetPlan<'a> {
        TargetPlan {
            domains,
            countries,
            pairs: None,
            samples,
        }
    }

    /// `samples` probes of each listed (domain index, country index) pair,
    /// in pair order.
    pub fn pairs(
        domains: &'a [String],
        countries: &'a [CountryCode],
        pairs: &'a [(usize, usize)],
        samples: usize,
    ) -> TargetPlan<'a> {
        TargetPlan {
            domains,
            countries,
            pairs: Some(pairs),
            samples,
        }
    }

    /// Total probes in the plan.
    pub fn len(&self) -> usize {
        match self.pairs {
            Some(pairs) => pairs.len() * self.samples,
            None => self.domains.len() * self.countries.len() * self.samples,
        }
    }

    /// Whether the plan holds no probes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Map a flat probe index back to its coordinate.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn coord(&self, i: usize) -> ProbeCoord {
        assert!(
            i < self.len(),
            "index {i} out of plan bounds {}",
            self.len()
        );
        match self.pairs {
            Some(pairs) => {
                let (domain, country) = pairs[i / self.samples];
                ProbeCoord {
                    domain,
                    country,
                    sample: i % self.samples,
                }
            }
            None => {
                let per_domain = self.countries.len() * self.samples;
                ProbeCoord {
                    domain: i / per_domain,
                    country: (i / self.samples) % self.countries.len(),
                    sample: i % self.samples,
                }
            }
        }
    }

    /// The inverse of [`coord`](TargetPlan::coord): the flat index a
    /// coordinate occupies, or `None` when the coordinate is not in the
    /// plan (out-of-range axis, or a pair the plan does not probe).
    ///
    /// For pair plans the *first* occurrence of a duplicated pair wins, so
    /// `index(coord(i)) == i` is guaranteed only for plans without
    /// duplicate pairs (grids always satisfy it).
    pub fn index(&self, c: ProbeCoord) -> Option<usize> {
        if c.sample >= self.samples {
            return None;
        }
        match self.pairs {
            Some(pairs) => pairs
                .iter()
                .position(|&(d, co)| (d, co) == (c.domain, c.country))
                .map(|p| p * self.samples + c.sample),
            None => {
                if c.domain >= self.domains.len() || c.country >= self.countries.len() {
                    return None;
                }
                Some((c.domain * self.countries.len() + c.country) * self.samples + c.sample)
            }
        }
    }

    /// The probe target at a flat index.
    pub fn target(&self, i: usize) -> ProbeTarget {
        let c = self.coord(i);
        ProbeTarget::http(&self.domains[c.domain], self.countries[c.country])
    }

    /// Lazily enumerate every target in index order — the input to
    /// [`probe_stream`](geoblock_lumscan::Lumscan::probe_stream). Nothing
    /// is materialized; each target is built when the stream pulls it.
    pub fn iter(&self) -> impl Iterator<Item = ProbeTarget> + '_ {
        (0..self.len()).map(|i| self.target(i))
    }

    /// Lazily enumerate the targets of an index sub-range, in index order —
    /// the slice a sharded work unit probes. The range is clamped to the
    /// plan's bounds, so an over-long range is a prefix of nothing extra,
    /// not a panic.
    pub fn iter_range(
        &self,
        range: std::ops::Range<usize>,
    ) -> impl Iterator<Item = ProbeTarget> + '_ {
        let end = range.end.min(self.len());
        let start = range.start.min(end);
        (start..end).map(|i| self.target(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoblock_worldgen::cc;

    fn domains() -> Vec<String> {
        vec!["a.com".into(), "b.com".into()]
    }

    #[test]
    fn grid_order_is_domain_major() {
        let domains = domains();
        let countries = [cc("IR"), cc("US")];
        let plan = TargetPlan::grid(&domains, &countries, 3);
        assert_eq!(plan.len(), 2 * 2 * 3);
        // First domain, first country, samples 0..3; then the next country.
        assert_eq!(
            plan.coord(0),
            ProbeCoord {
                domain: 0,
                country: 0,
                sample: 0
            }
        );
        assert_eq!(
            plan.coord(2),
            ProbeCoord {
                domain: 0,
                country: 0,
                sample: 2
            }
        );
        assert_eq!(
            plan.coord(3),
            ProbeCoord {
                domain: 0,
                country: 1,
                sample: 0
            }
        );
        assert_eq!(
            plan.coord(6),
            ProbeCoord {
                domain: 1,
                country: 0,
                sample: 0
            }
        );
        assert_eq!(plan.target(6).url.host.as_str(), "b.com");
        assert_eq!(plan.target(3).country, cc("US"));
        assert_eq!(plan.iter().count(), plan.len());
    }

    #[test]
    fn pair_plans_follow_pair_order() {
        let domains = domains();
        let countries = [cc("IR"), cc("US")];
        let pairs = [(1, 0), (0, 1)];
        let plan = TargetPlan::pairs(&domains, &countries, &pairs, 2);
        assert_eq!(plan.len(), 4);
        assert_eq!(
            plan.coord(0),
            ProbeCoord {
                domain: 1,
                country: 0,
                sample: 0
            }
        );
        assert_eq!(
            plan.coord(1),
            ProbeCoord {
                domain: 1,
                country: 0,
                sample: 1
            }
        );
        assert_eq!(
            plan.coord(2),
            ProbeCoord {
                domain: 0,
                country: 1,
                sample: 0
            }
        );
        assert_eq!(plan.target(0).url.host.as_str(), "b.com");
        assert_eq!(plan.target(2).country, cc("US"));
    }

    #[test]
    fn empty_plans_are_empty() {
        let domains: Vec<String> = Vec::new();
        let countries = [cc("IR")];
        let plan = TargetPlan::grid(&domains, &countries, 3);
        assert!(plan.is_empty());
        assert_eq!(plan.iter().count(), 0);
        let pairs: [(usize, usize); 0] = [];
        assert!(TargetPlan::pairs(&domains, &countries, &pairs, 5).is_empty());
    }

    #[test]
    fn index_inverts_coord() {
        let domains = domains();
        let countries = [cc("IR"), cc("US"), cc("DE")];
        let plan = TargetPlan::grid(&domains, &countries, 4);
        for i in 0..plan.len() {
            assert_eq!(plan.index(plan.coord(i)), Some(i));
        }
        // Coordinates outside the plan are rejected, not misfiled.
        assert_eq!(
            plan.index(ProbeCoord {
                domain: 2,
                country: 0,
                sample: 0
            }),
            None
        );
        assert_eq!(
            plan.index(ProbeCoord {
                domain: 0,
                country: 3,
                sample: 0
            }),
            None
        );
        assert_eq!(
            plan.index(ProbeCoord {
                domain: 0,
                country: 0,
                sample: 4
            }),
            None
        );

        let pairs = [(1, 0), (0, 2)];
        let plan = TargetPlan::pairs(&domains, &countries, &pairs, 2);
        for i in 0..plan.len() {
            assert_eq!(plan.index(plan.coord(i)), Some(i));
        }
        // A pair the plan does not probe has no index.
        assert_eq!(
            plan.index(ProbeCoord {
                domain: 0,
                country: 0,
                sample: 0
            }),
            None
        );
    }

    #[test]
    fn iter_range_is_a_window_of_iter() {
        let domains = domains();
        let countries = [cc("IR"), cc("US")];
        let plan = TargetPlan::grid(&domains, &countries, 3);
        let all: Vec<_> = plan.iter().collect();
        let window: Vec<_> = plan.iter_range(3..9).collect();
        assert_eq!(window.len(), 6);
        for (w, a) in window.iter().zip(&all[3..9]) {
            assert_eq!(w.url.host.as_str(), a.url.host.as_str());
            assert_eq!(w.country, a.country);
        }
        // Out-of-bounds ranges clamp instead of panicking.
        assert_eq!(plan.iter_range(9..100).count(), plan.len() - 9);
        assert_eq!(plan.iter_range(50..100).count(), 0);
    }

    #[test]
    fn round_coords_flatten_across_round_plans() {
        let domains = domains();
        let countries = [cc("IR"), cc("US")];
        // Round 0: the 2×2×3 baseline grid. Round 1: one confirmed pair.
        let baseline = TargetPlan::grid(&domains, &countries, 3);
        let pairs = [(1, 0)];
        let confirm = TargetPlan::pairs(&domains, &countries, &pairs, 20);

        let first = RoundCoord::new(
            0,
            ProbeCoord {
                domain: 0,
                country: 0,
                sample: 0,
            },
        );
        assert_eq!(first.flat_index(0, &baseline), Some(0));

        // The first confirmation probe lands right after the baseline.
        let c = RoundCoord::new(
            1,
            ProbeCoord {
                domain: 1,
                country: 0,
                sample: 0,
            },
        );
        assert_eq!(c.flat_index(baseline.len(), &confirm), Some(12));

        // A coordinate absent from its round's plan has no flat index.
        let absent = RoundCoord::new(
            1,
            ProbeCoord {
                domain: 0,
                country: 0,
                sample: 0,
            },
        );
        assert_eq!(absent.flat_index(baseline.len(), &confirm), None);
    }

    #[test]
    #[should_panic(expected = "out of plan bounds")]
    fn coord_bounds_are_checked() {
        let domains = domains();
        let countries = [cc("IR")];
        TargetPlan::grid(&domains, &countries, 1).coord(2);
    }
}
