//! Timeout-based blocking analysis (§7.3 future work).
//!
//! The paper observes "consistent timeouts for certain websites in only
//! some countries" and flags them as a *possible* geoblocking mechanism
//! that is much harder to distinguish from censorship. This module
//! implements that exploration: it finds (domain, country) pairs whose
//! samples consistently fail while the same domain responds healthily
//! elsewhere, then grades how geoblocking-like the failing-country set
//! looks (sanctioned/high-abuse countries are the geoblocking signature;
//! a censor's signature is a *single* country with heavy censorship).

use geoblock_worldgen::CountryCode;
use serde::{Deserialize, Serialize};

use crate::observation::{ErrKind, Obs, SampleStore};

/// A domain with country-selective consistent timeouts.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeoutSuspect {
    /// The domain.
    pub domain: String,
    /// Countries where every sample failed with a timeout-like error.
    pub dark_countries: Vec<CountryCode>,
    /// Countries with healthy responses.
    pub healthy_countries: usize,
    /// Heuristic grade of how geoblocking-like the dark set is, in [0, 1]:
    /// the fraction of dark countries that are sanctioned or high-abuse
    /// (the populations server-side blockers target).
    pub geoblock_likeness: f64,
}

/// Failure kinds that plausibly are a server dropping the connection
/// (rather than the proxy layer failing).
fn timeout_like(kind: ErrKind) -> bool {
    matches!(kind, ErrKind::Timeout | ErrKind::Reset | ErrKind::Refused)
}

/// Minimum samples per cell before a judgement is made.
const MIN_SAMPLES: usize = 2;

/// Find timeout-blocking suspects in a store.
pub fn find_suspects(store: &SampleStore) -> Vec<TimeoutSuspect> {
    let mut out = Vec::new();
    for d in 0..store.domains.len() {
        let mut dark = Vec::new();
        let mut healthy = 0usize;
        for (c, country) in store.countries.iter().enumerate() {
            let samples = store.cell(d, c);
            if samples.len() < MIN_SAMPLES {
                continue;
            }
            let responses = samples.iter().filter(|o| o.responded()).count();
            if responses > 0 {
                healthy += 1;
                continue;
            }
            let all_timeout_like = samples.iter().all(|o| match o {
                Obs::Error(kind) => timeout_like(*kind),
                Obs::Response { .. } => false,
            });
            if all_timeout_like {
                dark.push(*country);
            }
        }
        // Selective darkness: some countries dark, clearly healthy
        // elsewhere. Dead sites (dark everywhere) are excluded.
        if dark.is_empty() || healthy < 3 * dark.len().min(5) {
            continue;
        }
        let targeted = dark
            .iter()
            .filter(|c| {
                c.info()
                    .map(|i| i.sanctioned || i.abuse >= 0.40)
                    .unwrap_or(false)
            })
            .count();
        out.push(TimeoutSuspect {
            domain: store.domains[d].clone(),
            geoblock_likeness: targeted as f64 / dark.len() as f64,
            dark_countries: dark,
            healthy_countries: healthy,
        });
    }
    out.sort_by(|a, b| {
        b.geoblock_likeness
            .partial_cmp(&a.geoblock_likeness)
            .expect("no NaN")
            .then(a.domain.cmp(&b.domain))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoblock_worldgen::cc;

    fn ok() -> Obs {
        Obs::Response {
            status: 200,
            len: 9000,
            page: None,
        }
    }

    fn timeout() -> Obs {
        Obs::Error(ErrKind::Timeout)
    }

    fn store() -> SampleStore {
        SampleStore::new(
            vec![
                "selective.com".into(),
                "dead.com".into(),
                "flaky.com".into(),
            ],
            vec![
                cc("IR"),
                cc("CN"),
                cc("US"),
                cc("DE"),
                cc("FR"),
                cc("JP"),
                cc("GB"),
                cc("CA"),
            ],
        )
    }

    #[test]
    fn selective_timeouts_are_flagged_with_high_likeness() {
        let mut s = store();
        for c in 0..8 {
            for _ in 0..3 {
                // selective.com: dark in IR and CN, healthy elsewhere.
                s.push(0, c, if c < 2 { timeout() } else { ok() });
            }
        }
        let suspects = find_suspects(&s);
        assert_eq!(suspects.len(), 1);
        let sus = &suspects[0];
        assert_eq!(sus.domain, "selective.com");
        assert_eq!(sus.dark_countries, vec![cc("IR"), cc("CN")]);
        assert!((sus.geoblock_likeness - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dead_domains_are_not_suspects() {
        let mut s = store();
        for c in 0..8 {
            for _ in 0..3 {
                s.push(1, c, timeout());
            }
        }
        assert!(find_suspects(&s).is_empty());
    }

    #[test]
    fn partial_failures_are_not_consistent() {
        let mut s = store();
        for c in 0..8 {
            s.push(2, c, timeout());
            s.push(2, c, ok());
            s.push(2, c, ok());
        }
        assert!(find_suspects(&s).is_empty());
    }

    #[test]
    fn proxy_errors_do_not_count_as_server_timeouts() {
        let mut s = store();
        for c in 0..8 {
            for _ in 0..3 {
                s.push(
                    0,
                    c,
                    if c == 0 {
                        Obs::Error(ErrKind::Proxy)
                    } else {
                        ok()
                    },
                );
            }
        }
        assert!(find_suspects(&s).is_empty());
    }

    #[test]
    fn benign_dark_countries_grade_low() {
        let mut s = store();
        for c in 0..8 {
            for _ in 0..3 {
                // Dark only in Germany and France: not a geoblock shape.
                s.push(0, c, if c == 3 || c == 4 { timeout() } else { ok() });
            }
        }
        let suspects = find_suspects(&s);
        assert_eq!(suspects.len(), 1);
        assert_eq!(suspects[0].geoblock_likeness, 0.0);
    }
}
