//! Property-based tests for the pipeline invariants: confirmation
//! thresholds, consistency-score bounds, and outlier-rule monotonicity.

use geoblock_blockpages::PageKind;
use geoblock_core::confirm::{verdicts, ConfirmConfig};
use geoblock_core::consistency::consistency_scores;
use geoblock_core::observation::{ErrKind, Obs, SampleStore};
use geoblock_core::outliers::is_outlier;
use geoblock_worldgen::cc;
use proptest::prelude::*;

fn obs_strategy() -> impl Strategy<Value = Obs> {
    prop_oneof![
        3 => Just(Obs::Response { status: 200, len: 9000, page: None }),
        2 => Just(Obs::Response { status: 403, len: 1500, page: Some(PageKind::Cloudflare) }),
        1 => Just(Obs::Response { status: 403, len: 600, page: Some(PageKind::Akamai) }),
        1 => Just(Obs::Error(ErrKind::Timeout)),
    ]
}

fn store_strategy() -> impl Strategy<Value = SampleStore> {
    proptest::collection::vec(proptest::collection::vec(obs_strategy(), 0..40), 1..6).prop_map(
        |cells| {
            let countries = [cc("IR"), cc("SY"), cc("CN"), cc("US"), cc("DE")];
            let mut store = SampleStore::new(
                vec!["probe.example".to_string()],
                countries[..cells.len()].to_vec(),
            );
            for (c, samples) in cells.into_iter().enumerate() {
                for obs in samples {
                    store.push(0, c, obs);
                }
            }
            store
        },
    )
}

proptest! {
    #[test]
    fn verdict_agreement_meets_the_threshold(store in store_strategy()) {
        let config = ConfirmConfig { confirm_samples: 10, threshold: 0.8 };
        for v in verdicts(&store, &config) {
            prop_assert!(v.agreement() >= config.threshold);
            prop_assert!(v.total > config.confirm_samples);
            prop_assert!(v.block_count <= v.total);
        }
    }

    #[test]
    fn raising_the_threshold_never_adds_verdicts(store in store_strategy()) {
        let lenient = ConfirmConfig { confirm_samples: 5, threshold: 0.5 };
        let strict = ConfirmConfig { confirm_samples: 5, threshold: 0.9 };
        let low = verdicts(&store, &lenient);
        let high = verdicts(&store, &strict);
        prop_assert!(high.len() <= low.len());
        // Every strict verdict also exists under the lenient policy.
        for v in &high {
            prop_assert!(low
                .iter()
                .any(|w| w.domain == v.domain && w.country == v.country));
        }
    }

    #[test]
    fn consistency_scores_are_bounded(store in store_strategy()) {
        for report in consistency_scores(&store, PageKind::Akamai) {
            prop_assert!((0.0..=1.0).contains(&report.score));
            prop_assert!(report.consistent_countries.len() <= report.seeing_countries);
            prop_assert!(report.seeing_countries <= report.responding_countries);
            if report.is_confirmed_geoblocker() {
                prop_assert!(report.score >= 1.0);
                prop_assert!(
                    report.consistent_countries.len() < report.responding_countries
                );
            }
        }
    }

    #[test]
    fn outlier_rule_is_monotone(len in 0u32..100_000, rep in 1u32..100_000) {
        // Monotone in len (shorter ⇒ more outlier-ish) and anti-monotone
        // in cutoff.
        if is_outlier(len, rep, 0.30) {
            prop_assert!(is_outlier(len, rep, 0.20), "lower cutoff must keep outliers");
            if len > 0 {
                prop_assert!(is_outlier(len - 1, rep, 0.30));
            }
        }
        if is_outlier(len, rep, 0.50) {
            prop_assert!(is_outlier(len, rep, 0.30));
        }
    }
}
