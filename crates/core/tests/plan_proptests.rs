//! Property tests for the [`TargetPlan`] coordinate geometry.
//!
//! Every study pass leans on the `i ↔ (domain, country, sample)` mapping to
//! file streamed completions into the right observation cell; a one-off
//! error here corrupts the 23-sample agreement statistics silently. These
//! properties pin both directions of the arithmetic across arbitrary plan
//! shapes, including the degenerate grids (no domains, a single country,
//! the last sample of a pair).

use geoblock_core::{ProbeCoord, TargetPlan};
use geoblock_worldgen::{cc, CountryCode};
use proptest::prelude::*;

fn domains(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("domain-{i}.example")).collect()
}

fn countries(n: usize) -> Vec<CountryCode> {
    ["IR", "SY", "US", "DE", "RU", "CN"]
        .iter()
        .take(n)
        .map(|c| cc(c))
        .collect()
}

proptest! {
    /// Grid round trip: every flat index maps to a coordinate that maps
    /// back to the same index, and the coordinate is in range.
    #[test]
    fn grid_index_coord_round_trip(
        nd in 0usize..7,
        nc in 1usize..6,
        ns in 1usize..5,
        probe in 0usize..200,
    ) {
        let domains = domains(nd);
        let countries = countries(nc);
        let plan = TargetPlan::grid(&domains, &countries, ns);
        prop_assert_eq!(plan.len(), nd * nc * ns);
        if plan.is_empty() {
            return Ok(());
        }
        let i = probe % plan.len();
        let c = plan.coord(i);
        prop_assert!(c.domain < nd && c.country < nc && c.sample < ns);
        prop_assert_eq!(plan.index(c), Some(i));
        // The target agrees with the coordinate.
        let target = plan.target(i);
        prop_assert_eq!(target.url.host.as_str(), domains[c.domain].as_str());
        prop_assert_eq!(target.country, countries[c.country]);
    }

    /// The forward map visits each coordinate exactly once, in domain-major
    /// order: consecutive indices advance sample, then country, then domain.
    #[test]
    fn grid_enumeration_is_domain_major_and_exhaustive(
        nd in 1usize..5,
        nc in 1usize..5,
        ns in 1usize..4,
    ) {
        let domains = domains(nd);
        let countries = countries(nc);
        let plan = TargetPlan::grid(&domains, &countries, ns);
        let mut seen = std::collections::HashSet::new();
        let mut expected = 0usize;
        for d in 0..nd {
            for c in 0..nc {
                for s in 0..ns {
                    let coord = ProbeCoord { domain: d, country: c, sample: s };
                    prop_assert_eq!(plan.index(coord), Some(expected));
                    prop_assert_eq!(plan.coord(expected), coord);
                    prop_assert!(seen.insert(expected));
                    expected += 1;
                }
            }
        }
        prop_assert_eq!(expected, plan.len());
    }

    /// Pair-plan round trip over duplicate-free pair lists (the shape
    /// confirmation actually probes: each ambiguous pair listed once).
    #[test]
    fn pair_index_coord_round_trip(
        nd in 1usize..6,
        nc in 1usize..5,
        ns in 1usize..5,
        picks in prop::collection::hash_set((0usize..6, 0usize..5), 0..8),
    ) {
        let domains = domains(nd);
        let countries = countries(nc);
        let pairs: Vec<(usize, usize)> = picks
            .into_iter()
            .filter(|&(d, c)| d < nd && c < nc)
            .collect();
        let plan = TargetPlan::pairs(&domains, &countries, &pairs, ns);
        prop_assert_eq!(plan.len(), pairs.len() * ns);
        for i in 0..plan.len() {
            let c = plan.coord(i);
            prop_assert_eq!((c.domain, c.country), pairs[i / ns]);
            prop_assert_eq!(plan.index(c), Some(i));
        }
    }

    /// Out-of-plan coordinates never get an index: one step past each axis
    /// bound is rejected, and so is the max-sample edge.
    #[test]
    fn out_of_range_coords_have_no_index(
        nd in 1usize..6,
        nc in 1usize..5,
        ns in 1usize..5,
    ) {
        let domains = domains(nd);
        let countries = countries(nc);
        let plan = TargetPlan::grid(&domains, &countries, ns);
        let last = ProbeCoord { domain: nd - 1, country: nc - 1, sample: ns - 1 };
        prop_assert_eq!(plan.index(last), Some(plan.len() - 1));
        prop_assert_eq!(plan.index(ProbeCoord { domain: nd, ..last }), None);
        prop_assert_eq!(plan.index(ProbeCoord { country: nc, ..last }), None);
        prop_assert_eq!(plan.index(ProbeCoord { sample: ns, ..last }), None);
    }
}

/// The empty-domain grid — what a study over a filtered-to-nothing domain
/// list produces — holds no probes and rejects every coordinate.
#[test]
fn zero_domain_grid_is_empty() {
    let domains: Vec<String> = Vec::new();
    let countries = countries(3);
    let plan = TargetPlan::grid(&domains, &countries, 20);
    assert!(plan.is_empty());
    assert_eq!(plan.iter().count(), 0);
    assert_eq!(
        plan.index(ProbeCoord {
            domain: 0,
            country: 0,
            sample: 0
        }),
        None
    );
}

/// A single-country grid degenerates to `domains × samples` with country
/// index pinned at zero.
#[test]
fn single_country_grid_round_trips() {
    let domains = domains(4);
    let countries = countries(1);
    let plan = TargetPlan::grid(&domains, &countries, 3);
    assert_eq!(plan.len(), 12);
    for i in 0..plan.len() {
        let c = plan.coord(i);
        assert_eq!(c.country, 0);
        assert_eq!(plan.index(c), Some(i));
    }
}
