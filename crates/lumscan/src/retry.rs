//! The adaptive retry layer: policy, backoff, and the per-exit circuit
//! breaker.
//!
//! §3.2's "repeats each failed request a configurable number of times" is
//! the seed of this module, but a fixed retry count treats every failure the
//! same — it burns the ≤10-requests-per-exit budget re-asking a proxy that
//! already said *no*, and keeps routing probes through households that died
//! mid-session. [`RetryPolicy`] instead consumes the
//! [`Retryability`](geoblock_http::Retryability) class of each error:
//!
//! * **permanent** failures stop the probe immediately;
//! * **transient** failures are retried on a fresh exit, after a
//!   deterministic exponential backoff;
//! * **exit-fatal** failures additionally feed the [`CircuitBreaker`],
//!   which quarantines the offending session so the engine's session
//!   derivation skips it on future attempts.
//!
//! Backoff jitter is *derived from the session hash*, not sampled from a
//! shared RNG, so identically-seeded studies replay identically no matter
//! how tasks interleave.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use geoblock_http::Retryability;
use parking_lot::Mutex;

use crate::session::SessionId;

fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// How a probe spends its attempt budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Extra attempts after the first (so a probe makes at most
    /// `max_retries + 1` attempts). Only failures whose class
    /// [`should_retry`](Retryability::should_retry) consume them.
    pub max_retries: u32,
    /// Base delay for exponential backoff between attempts: attempt `n`
    /// waits `base_backoff * 2^(n-1)` plus deterministic jitter in
    /// `[0, base_backoff)`. [`Duration::ZERO`] (the default) disables
    /// sleeping entirely, which is what simulations want.
    pub base_backoff: Duration,
    /// Upper bound on any single backoff delay.
    pub max_backoff: Duration,
    /// Wall-clock budget for one attempt (verification plus fetch). `None`
    /// leaves attempts unbounded; an elapsed budget counts as a transient
    /// [`Timeout`](geoblock_http::FetchError::Timeout).
    pub attempt_timeout: Option<Duration>,
    /// Transient failures a single exit may accumulate before its session
    /// is quarantined. `0` disables the circuit breaker. Exit-fatal
    /// failures quarantine immediately regardless of the count.
    pub breaker_threshold: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::from_millis(250),
            attempt_timeout: None,
            breaker_threshold: 3,
        }
    }
}

impl RetryPolicy {
    /// The naive baseline: one attempt, no breaker, no backoff. This is
    /// what the reliability ablation compares the hardened policy against.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_retries: 0,
            breaker_threshold: 0,
            ..RetryPolicy::default()
        }
    }

    /// A policy that differs from the default only in retry count.
    pub fn with_max_retries(max_retries: u32) -> RetryPolicy {
        RetryPolicy {
            max_retries,
            ..RetryPolicy::default()
        }
    }

    /// Maximum attempts a probe may make under this policy.
    pub fn max_attempts(&self) -> u32 {
        self.max_retries + 1
    }

    /// Deterministic backoff before attempt `attempt` (1-based; the first
    /// attempt never waits). Jitter is derived from `token` — callers pass
    /// the session hash — so replays sleep identically.
    pub fn backoff(&self, attempt: u32, token: u64) -> Duration {
        if attempt <= 1 || self.base_backoff.is_zero() {
            return Duration::ZERO;
        }
        let base = self.base_backoff.as_nanos() as u64;
        let exp = base.saturating_mul(1u64 << (attempt - 2).min(16));
        let jitter = mix(token ^ attempt as u64) % base.max(1);
        Duration::from_nanos(exp.saturating_add(jitter)).min(self.max_backoff)
    }
}

const BREAKER_SHARDS: usize = 32;

/// Per-exit failure accounting. Sessions pin exit machines, so quarantining
/// a session removes one misbehaving household from the rotation.
///
/// The breaker is shared engine state: every probe records its per-attempt
/// outcomes here, and the engine's session derivation consults
/// [`is_quarantined`](CircuitBreaker::is_quarantined) before reusing an
/// exit.
#[derive(Debug)]
pub struct CircuitBreaker {
    /// Transient-failure counts per session; a session at or above the
    /// threshold is quarantined. Threshold `0` disables the breaker.
    threshold: u32,
    shards: Vec<Mutex<HashMap<u64, u32>>>,
    quarantined: AtomicUsize,
}

impl CircuitBreaker {
    /// A breaker that trips after `threshold` transient failures (or one
    /// exit-fatal failure). `threshold == 0` never trips.
    pub fn new(threshold: u32) -> CircuitBreaker {
        CircuitBreaker {
            threshold,
            shards: (0..BREAKER_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            quarantined: AtomicUsize::new(0),
        }
    }

    fn shard(&self, session: SessionId) -> &Mutex<HashMap<u64, u32>> {
        &self.shards[(mix(session.0) as usize) % BREAKER_SHARDS]
    }

    /// Whether the exit pinned by `session` is out of rotation.
    pub fn is_quarantined(&self, session: SessionId) -> bool {
        if self.threshold == 0 {
            return false;
        }
        self.shard(session)
            .lock()
            .get(&session.0)
            .is_some_and(|&n| n >= self.threshold)
    }

    /// Record a failed attempt on `session`. Returns `true` if the exit is
    /// now quarantined.
    pub fn record_failure(&self, session: SessionId, class: Retryability) -> bool {
        if self.threshold == 0 {
            return false;
        }
        let mut shard = self.shard(session).lock();
        let count = shard.entry(session.0).or_insert(0);
        let was_out = *count >= self.threshold;
        if class.poisons_exit() {
            *count = self.threshold;
        } else {
            *count = (*count + 1).min(self.threshold);
        }
        let now_out = *count >= self.threshold;
        if now_out && !was_out {
            self.quarantined.fetch_add(1, Ordering::Relaxed);
        }
        now_out
    }

    /// Record a successful exchange on `session`, clearing its transient
    /// strikes (a quarantined exit stays quarantined).
    pub fn record_success(&self, session: SessionId) {
        if self.threshold == 0 {
            return;
        }
        let mut shard = self.shard(session).lock();
        if shard.get(&session.0).is_some_and(|&n| n < self.threshold) {
            shard.remove(&session.0);
        }
    }

    /// Number of exits currently quarantined.
    pub fn quarantined_count(&self) -> usize {
        self.quarantined.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_legacy_retry_count() {
        let p = RetryPolicy::default();
        assert_eq!(p.max_attempts(), 3);
        assert_eq!(RetryPolicy::none().max_attempts(), 1);
    }

    #[test]
    fn zero_base_backoff_never_sleeps() {
        let p = RetryPolicy::default();
        for attempt in 1..6 {
            assert_eq!(p.backoff(attempt, 0xabcd), Duration::ZERO);
        }
    }

    #[test]
    fn backoff_grows_and_caps() {
        let p = RetryPolicy {
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(20),
            ..RetryPolicy::default()
        };
        assert_eq!(p.backoff(1, 7), Duration::ZERO);
        let b2 = p.backoff(2, 7);
        let b3 = p.backoff(3, 7);
        let b4 = p.backoff(9, 7);
        assert!(
            b2 >= Duration::from_millis(2) && b2 < Duration::from_millis(4),
            "{b2:?}"
        );
        assert!(
            b3 >= Duration::from_millis(4) && b3 < Duration::from_millis(6),
            "{b3:?}"
        );
        assert_eq!(b4, Duration::from_millis(20), "capped");
    }

    #[test]
    fn backoff_jitter_is_deterministic_per_token() {
        let p = RetryPolicy {
            base_backoff: Duration::from_millis(3),
            ..RetryPolicy::default()
        };
        assert_eq!(p.backoff(2, 42), p.backoff(2, 42));
        // Different sessions jitter differently (with overwhelming odds).
        assert_ne!(p.backoff(2, 1), p.backoff(2, 2));
    }

    #[test]
    fn breaker_trips_on_transient_strikes() {
        let b = CircuitBreaker::new(3);
        let s = SessionId(9);
        assert!(!b.record_failure(s, Retryability::Transient));
        assert!(!b.record_failure(s, Retryability::Transient));
        assert!(!b.is_quarantined(s));
        assert!(b.record_failure(s, Retryability::Transient));
        assert!(b.is_quarantined(s));
        assert_eq!(b.quarantined_count(), 1);
    }

    #[test]
    fn exit_fatal_trips_immediately() {
        let b = CircuitBreaker::new(5);
        let s = SessionId(77);
        assert!(b.record_failure(s, Retryability::ExitFatal));
        assert!(b.is_quarantined(s));
    }

    #[test]
    fn success_clears_strikes_but_not_quarantine() {
        let b = CircuitBreaker::new(2);
        let s = SessionId(5);
        b.record_failure(s, Retryability::Transient);
        b.record_success(s);
        assert!(
            !b.record_failure(s, Retryability::Transient),
            "strikes were reset"
        );
        b.record_failure(s, Retryability::Transient);
        assert!(b.is_quarantined(s));
        b.record_success(s);
        assert!(b.is_quarantined(s), "quarantine is sticky");
        assert_eq!(b.quarantined_count(), 1);
    }

    #[test]
    fn zero_threshold_disables_breaker() {
        let b = CircuitBreaker::new(0);
        let s = SessionId(1);
        assert!(!b.record_failure(s, Retryability::ExitFatal));
        assert!(!b.is_quarantined(s));
        assert_eq!(b.quarantined_count(), 0);
    }

    mod backoff_properties {
        use super::*;
        use proptest::prelude::*;

        fn policy_strategy() -> impl Strategy<Value = RetryPolicy> {
            // Nanosecond-granular bases exercise the rounding edges; the
            // cap may fall below the base to exercise the clamp.
            (0u64..5_000_000, 0u64..10_000_000).prop_map(|(base, cap)| RetryPolicy {
                base_backoff: Duration::from_nanos(base),
                max_backoff: Duration::from_nanos(cap),
                ..RetryPolicy::default()
            })
        }

        proptest! {
            /// The same (attempt, token) always sleeps the same — the
            /// determinism the whole simulation layer leans on.
            #[test]
            fn deterministic_per_attempt_and_token(
                policy in policy_strategy(),
                attempt in 0u32..64,
                token in any::<u64>(),
            ) {
                prop_assert_eq!(
                    policy.backoff(attempt, token),
                    policy.backoff(attempt, token)
                );
            }

            /// Every delay respects the cap, for any attempt number —
            /// including ones far past the shift guard.
            #[test]
            fn capped_at_max_backoff(
                policy in policy_strategy(),
                attempt in 0u32..1_000,
                token in any::<u64>(),
            ) {
                prop_assert!(policy.backoff(attempt, token) <= policy.max_backoff);
            }

            /// Once a delay reaches the cap it stays there: in the exact-
            /// doubling range (the shift guard saturates at 16, past which
            /// only jitter varies) exp(n+1) = 2·exp(n) and jitter < base ≤
            /// exp(n), so the uncapped schedule is monotone and the clamp is
            /// absorbing.
            #[test]
            fn cap_is_absorbing(
                policy in policy_strategy(),
                attempt in 2u32..17,
                token in any::<u64>(),
            ) {
                let here = policy.backoff(attempt, token);
                if here == policy.max_backoff {
                    prop_assert_eq!(policy.backoff(attempt + 1, token), policy.max_backoff);
                }
            }

            /// A zero base disables sleeping entirely, whatever the attempt
            /// or token.
            #[test]
            fn zero_base_is_exactly_zero(
                attempt in 0u32..256,
                token in any::<u64>(),
                cap in 0u64..10_000_000,
            ) {
                let policy = RetryPolicy {
                    base_backoff: Duration::ZERO,
                    max_backoff: Duration::from_nanos(cap),
                    ..RetryPolicy::default()
                };
                prop_assert_eq!(policy.backoff(attempt, token), Duration::ZERO);
            }

            /// The first attempt never waits, whatever the policy.
            #[test]
            fn first_attempt_never_waits(
                policy in policy_strategy(),
                token in any::<u64>(),
            ) {
                prop_assert_eq!(policy.backoff(0, token), Duration::ZERO);
                prop_assert_eq!(policy.backoff(1, token), Duration::ZERO);
            }
        }
    }
}
