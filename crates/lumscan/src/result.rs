//! Probe results and batch statistics.

use std::collections::BTreeMap;

use geoblock_http::{FetchError, FetchOutcome, RedirectChain};
use geoblock_worldgen::CountryCode;

use crate::session::SessionId;
use crate::transport::ProbeTarget;

/// The result of probing one target (after retries).
#[derive(Debug, Clone)]
pub struct ProbeResult {
    /// What was probed.
    pub target: ProbeTarget,
    /// Number of attempts made (1 = no retries needed).
    pub attempts: u32,
    /// Final outcome.
    pub outcome: FetchOutcome,
    /// The country the connectivity check confirmed for the exit, when
    /// pre-verification ran. A mismatch with `target.country` flags a
    /// geolocation error (§4.2 attributes some discrepancies to these).
    pub verified_country: Option<CountryCode>,
    /// The error of every failed attempt, in order. For a failed probe the
    /// last entry equals the terminal error in `outcome`; for a successful
    /// probe these are the faults the retry layer absorbed.
    pub attempt_errors: Vec<FetchError>,
    /// The exit session each attempt rode, in attempt order
    /// (`attempt_sessions.len() == attempts` for engine-produced results).
    /// This is the engine's event emission for the deterministic-simulation
    /// trace layer: exit identity per attempt is what lets a replay check
    /// the per-exit request budget and pin nondeterministic session
    /// derivation. Empty for synthesized results (e.g. a panicked slot,
    /// whose `attempts` is zero).
    pub attempt_sessions: Vec<SessionId>,
}

impl ProbeResult {
    /// The successful chain, if any.
    pub fn chain(&self) -> Option<&RedirectChain> {
        self.outcome.as_ref().ok()
    }

    /// The terminal error, if any.
    pub fn error(&self) -> Option<&FetchError> {
        self.outcome.as_ref().err()
    }

    /// Whether the probe produced a final response.
    pub fn responded(&self) -> bool {
        self.outcome.is_ok()
    }

    /// Whether the probe responded only thanks to a retry.
    pub fn recovered(&self) -> bool {
        self.responded() && self.attempts > 1
    }
}

/// Aggregate statistics over a probe batch — the §4.1.1 coverage numbers,
/// plus the reliability layer's own accounting.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BatchStats {
    /// Total probes.
    pub total: usize,
    /// Probes with a final response.
    pub responded: usize,
    /// Probes that failed after all retries.
    pub failed: usize,
    /// Failures whose last error was proxy-side.
    pub proxy_failures: usize,
    /// Probes the proxy refused outright (`X-Luminati-Error`).
    pub proxy_refused: usize,
    /// Total attempts across all probes (measures retry pressure).
    pub attempts: usize,
    /// `attempts_histogram[i]` = probes that finished in `i + 1` attempts.
    pub attempts_histogram: Vec<usize>,
    /// Probes that responded but needed more than one attempt — what the
    /// retry layer saved.
    pub recovered: usize,
    /// Every failed *attempt* (not just terminal failures) counted by
    /// [`FetchError::kind`]. This is the injected-fault ledger: a batch
    /// that responded 100% can still show heavy transient weather here.
    pub fault_counts: BTreeMap<&'static str, usize>,
    /// Exits the engine's circuit breaker has quarantined. Filled by
    /// [`Lumscan::batch_stats`](crate::Lumscan::batch_stats); plain
    /// [`BatchStats::of`] leaves it zero because results alone cannot see
    /// breaker state.
    pub quarantined_exits: usize,
}

impl BatchStats {
    /// Compute stats over results.
    pub fn of(results: &[ProbeResult]) -> BatchStats {
        let mut s = BatchStats::default();
        for r in results {
            s.record(r);
        }
        s
    }

    /// Fold one completed probe into the running statistics. This is the
    /// incremental form behind [`BatchStats::of`]; the streaming pipeline
    /// calls it per completion so live stats never need the result vector.
    pub fn record(&mut self, r: &ProbeResult) {
        self.total += 1;
        self.attempts += r.attempts as usize;
        let slot = (r.attempts as usize).max(1) - 1;
        if self.attempts_histogram.len() <= slot {
            self.attempts_histogram.resize(slot + 1, 0);
        }
        self.attempts_histogram[slot] += 1;
        for e in &r.attempt_errors {
            *self.fault_counts.entry(e.kind()).or_insert(0) += 1;
        }
        match &r.outcome {
            Ok(_) => {
                self.responded += 1;
                if r.recovered() {
                    self.recovered += 1;
                }
            }
            Err(e) => {
                self.failed += 1;
                if e.is_proxy_side() {
                    self.proxy_failures += 1;
                }
                if matches!(e, FetchError::ProxyRefused { .. }) {
                    self.proxy_refused += 1;
                }
            }
        }
    }

    /// Fold another batch's statistics into this one — the sharded
    /// orchestrator's merge step, combining per-work-unit stats into one
    /// study-wide ledger. Additive fields sum; the attempts histogram adds
    /// elementwise; `quarantined_exits` takes the max, because shards share
    /// one engine (and so one circuit breaker) — summing would count the
    /// same quarantined exit once per shard.
    pub fn merge(&mut self, other: &BatchStats) {
        self.total += other.total;
        self.responded += other.responded;
        self.failed += other.failed;
        self.proxy_failures += other.proxy_failures;
        self.proxy_refused += other.proxy_refused;
        self.attempts += other.attempts;
        self.recovered += other.recovered;
        if self.attempts_histogram.len() < other.attempts_histogram.len() {
            self.attempts_histogram
                .resize(other.attempts_histogram.len(), 0);
        }
        for (slot, n) in other.attempts_histogram.iter().enumerate() {
            self.attempts_histogram[slot] += n;
        }
        for (&kind, &n) in &other.fault_counts {
            *self.fault_counts.entry(kind).or_insert(0) += n;
        }
        self.quarantined_exits = self.quarantined_exits.max(other.quarantined_exits);
    }

    /// Error rate in [0, 1] ("unable to get a response from the site").
    pub fn error_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.failed as f64 / self.total as f64
        }
    }

    /// Share of responses that needed a retry, in [0, 1].
    pub fn recovery_rate(&self) -> f64 {
        if self.responded == 0 {
            0.0
        } else {
            self.recovered as f64 / self.responded as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoblock_http::{Hop, Request, Response, StatusCode};
    use geoblock_worldgen::cc;

    fn ok_result() -> ProbeResult {
        let url: geoblock_http::Url = "http://a.com/".parse().unwrap();
        ProbeResult {
            target: ProbeTarget::http("a.com", cc("US")),
            attempts: 1,
            outcome: Ok(RedirectChain::new(vec![Hop {
                request: Request::get(url.clone()),
                response: Response::builder(StatusCode::OK).finish(url),
            }])),
            verified_country: Some(cc("US")),
            attempt_errors: Vec::new(),
            attempt_sessions: vec![SessionId(1)],
        }
    }

    fn err_result(e: FetchError, attempts: u32) -> ProbeResult {
        ProbeResult {
            target: ProbeTarget::http("a.com", cc("US")),
            attempts,
            outcome: Err(e.clone()),
            verified_country: None,
            attempt_errors: (0..attempts).map(|_| e.clone()).collect(),
            attempt_sessions: (0..attempts).map(|a| SessionId(a as u64 + 1)).collect(),
        }
    }

    #[test]
    fn stats_classify_outcomes() {
        let results = vec![
            ok_result(),
            ok_result(),
            err_result(FetchError::Timeout, 3),
            err_result(
                FetchError::ProxyRefused {
                    reason: "blocked domain".into(),
                },
                1,
            ),
        ];
        let s = BatchStats::of(&results);
        assert_eq!(s.total, 4);
        assert_eq!(s.responded, 2);
        assert_eq!(s.failed, 2);
        assert_eq!(s.proxy_refused, 1);
        assert_eq!(s.proxy_failures, 1);
        assert_eq!(s.attempts, 6);
        assert!((s.error_rate() - 0.5).abs() < 1e-12);
        assert_eq!(s.attempts_histogram, vec![3, 0, 1]);
        assert_eq!(s.fault_counts.get("timeout"), Some(&3));
        assert_eq!(s.fault_counts.get("proxy-refused"), Some(&1));
        assert_eq!(s.quarantined_exits, 0);
    }

    #[test]
    fn recovery_is_counted() {
        let mut saved = ok_result();
        saved.attempts = 2;
        saved.attempt_errors = vec![FetchError::Timeout];
        assert!(saved.recovered());
        let s = BatchStats::of(&[saved, ok_result()]);
        assert_eq!(s.recovered, 1);
        assert!((s.recovery_rate() - 0.5).abs() < 1e-12);
        assert_eq!(s.fault_counts.get("timeout"), Some(&1));
    }

    #[test]
    fn incremental_record_matches_batch_of() {
        let results = vec![
            ok_result(),
            err_result(FetchError::Timeout, 3),
            err_result(
                FetchError::ProxyRefused {
                    reason: "blocked".into(),
                },
                1,
            ),
        ];
        let mut inc = BatchStats::default();
        for r in &results {
            inc.record(r);
        }
        assert_eq!(inc, BatchStats::of(&results));
    }

    #[test]
    fn merge_matches_recording_everything_in_one_batch() {
        let results = vec![
            ok_result(),
            ok_result(),
            err_result(FetchError::Timeout, 3),
            err_result(
                FetchError::ProxyRefused {
                    reason: "blocked".into(),
                },
                1,
            ),
        ];
        let whole = BatchStats::of(&results);
        let mut merged = BatchStats::of(&results[..1]);
        merged.merge(&BatchStats::of(&results[1..3]));
        merged.merge(&BatchStats::of(&results[3..]));
        assert_eq!(merged, whole);
        // Shards share one breaker: quarantine merges by max, not sum.
        let mut a = BatchStats {
            quarantined_exits: 2,
            ..BatchStats::default()
        };
        let b = BatchStats {
            quarantined_exits: 2,
            ..BatchStats::default()
        };
        a.merge(&b);
        assert_eq!(a.quarantined_exits, 2);
    }

    #[test]
    fn empty_batch_has_zero_error_rate() {
        let s = BatchStats::of(&[]);
        assert_eq!(s.error_rate(), 0.0);
        assert_eq!(s.recovery_rate(), 0.0);
        assert!(s.attempts_histogram.is_empty());
    }
}
