//! Lumscan — the study's reliability-hardened probing engine (§3.2).
//!
//! Luminati exits traffic at residential machines, so raw fetches through it
//! are noisy: local networks interfere, exits vanish mid-request, and bot
//! detection punishes incomplete header sets. Lumscan layers four
//! reliability features on top of a raw [`Transport`]:
//!
//! 1. **connectivity pre-verification** — before trusting an exit, fetch a
//!    proxy-controlled page that echoes the client's IP and geolocation;
//!    exits whose echoed country disagrees with the probe's target country
//!    are rejected outright (an exit-fatal
//!    [`GeolocationMismatch`](geoblock_http::FetchError::GeolocationMismatch));
//! 2. **adaptive retries** — failed attempts are repeated on a fresh exit
//!    under a [`RetryPolicy`]: the error's
//!    [`Retryability`](geoblock_http::Retryability) class decides whether a
//!    retry happens at all, a deterministic exponential backoff (jitter
//!    derived from the session hash, so replays are exact) paces it, an
//!    optional per-attempt wall-clock budget cuts stalled exchanges short,
//!    and a per-exit [`CircuitBreaker`] quarantines households that keep
//!    failing so the session derivation stops handing them out;
//! 3. **full header control** — callers supply complete browser header
//!    sets ("merely setting User-Agent is insufficient to suppress bot
//!    detection");
//! 4. **load balancing** — requests are spread across superproxies and
//!    exit machines, with at most 10 requests per exit, so a snapshot
//!    completes in hours and no end-user machine is over-used.
//!
//! # Retry semantics
//!
//! A probe makes at most [`RetryPolicy::max_attempts`] attempts. Each
//! attempt derives its exit session from `(host, country, invocation,
//! attempt)` — never from shared counters — then skips up to eight
//! quarantined sessions by salt-bumping deterministically. The attempt's
//! failure class steers what happens next:
//!
//! | class       | retried? | breaker effect                   |
//! |-------------|----------|----------------------------------|
//! | `Transient` | yes      | one strike against the exit      |
//! | `ExitFatal` | yes      | exit quarantined immediately     |
//! | `Permanent` | no       | one strike; probe fails fast     |
//!
//! Outcomes are surfaced in [`BatchStats`]: an attempts histogram, the
//! absorbed-fault ledger (`fault_counts`, keyed by
//! [`FetchError::kind`](geoblock_http::FetchError::kind)), the number of
//! probes that only responded thanks to a retry (`recovered`), and — via
//! [`Lumscan::batch_stats`] — the breaker's quarantine count.
//!
//! # Streaming execution
//!
//! Probes run through the streaming pipeline in [`stream`]:
//! [`Lumscan::probe_stream`] pulls targets lazily from an iterator, keeps at
//! most `config.concurrency` in flight, and yields `(index, ProbeResult)`
//! completions as they land with incrementally updated [`BatchStats`]. A
//! panicking probe task is caught per-slot
//! ([`ProbePanicked`](geoblock_http::FetchError::ProbePanicked)) instead of
//! poisoning the batch, and an optional [`ProbeSink`] observes every spawn
//! and completion. [`Lumscan::probe_all`] survives as a collect-and-reorder
//! compatibility wrapper over the stream.
//!
//! The engine is transport-generic: the same code drives the simulated
//! Luminati network (`geoblock-proxynet`), simulated VPSes
//! (`geoblock-netsim`), a fault-injection wrapper
//! (`geoblock_proxynet::FaultyTransport`), or — in a real deployment — an
//! actual proxy client.

pub mod engine;
pub mod result;
pub mod retry;
pub mod session;
pub mod stream;
pub mod transport;

pub use engine::{ConfigError, Lumscan, LumscanConfig, LumscanConfigBuilder};
pub use result::{BatchStats, ProbeResult};
pub use retry::{CircuitBreaker, RetryPolicy};
pub use session::{SessionAllocator, SessionId};
pub use stream::{GaugeSink, NoopSink, ProbeSink, ProbeStream, SharedSink};
pub use transport::{follow_redirects, ProbeTarget, Transport, TransportRequest};
