//! Lumscan — the study's reliability-hardened probing engine (§3.2).
//!
//! Luminati exits traffic at residential machines, so raw fetches through it
//! are noisy: local networks interfere, exits vanish mid-request, and bot
//! detection punishes incomplete header sets. Lumscan layers four
//! reliability features on top of a raw [`Transport`]:
//!
//! 1. **connectivity pre-verification** — before trusting an exit, fetch a
//!    proxy-controlled page that echoes the client's IP and geolocation;
//! 2. **retries** — each failed request is repeated a configurable number
//!    of times, on a fresh exit;
//! 3. **full header control** — callers supply complete browser header
//!    sets ("merely setting User-Agent is insufficient to suppress bot
//!    detection");
//! 4. **load balancing** — requests are spread across superproxies and
//!    exit machines, with at most 10 requests per exit, so a snapshot
//!    completes in hours and no end-user machine is over-used.
//!
//! The engine is transport-generic: the same code drives the simulated
//! Luminati network (`geoblock-proxynet`), simulated VPSes
//! (`geoblock-netsim`), or — in a real deployment — an actual proxy client.

pub mod engine;
pub mod result;
pub mod session;
pub mod transport;

pub use engine::{Lumscan, LumscanConfig};
pub use result::{BatchStats, ProbeResult};
pub use session::{SessionAllocator, SessionId};
pub use transport::{follow_redirects, ProbeTarget, Transport, TransportRequest};
