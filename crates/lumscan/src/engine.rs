//! The Lumscan probing engine.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use geoblock_http::{FetchError, HeaderProfile, Method, Request, Url};
use geoblock_worldgen::CountryCode;
use parking_lot::Mutex;
use tokio::task::JoinSet;

use crate::result::ProbeResult;
use crate::session::SessionId;
use crate::transport::{follow_redirects, ProbeTarget, Transport, TransportRequest};

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct LumscanConfig {
    /// Extra attempts after a retryable failure (§3.2: "repeats each failed
    /// request a configurable number of times").
    pub retries: u32,
    /// Redirect-follow limit (the study allows 10).
    pub max_redirects: usize,
    /// Requests allowed per exit machine before rotating.
    pub requests_per_exit: u64,
    /// Number of superproxies to balance across.
    pub superproxies: usize,
    /// Concurrent in-flight probes.
    pub concurrency: usize,
    /// Header profile applied to every probe.
    pub profile: HeaderProfile,
    /// Verify each new exit's connectivity and geolocation against the
    /// proxy-controlled echo page before using it.
    pub verify_connectivity: bool,
    /// The proxy-controlled echo URL used for verification.
    pub check_url: Url,
}

impl Default for LumscanConfig {
    fn default() -> Self {
        LumscanConfig {
            retries: 2,
            max_redirects: 10,
            requests_per_exit: 10,
            superproxies: 8,
            concurrency: 64,
            profile: HeaderProfile::FullBrowser,
            verify_connectivity: true,
            check_url: Url::http("lumtest.io"),
        }
    }
}

const INVOCATION_SHARDS: usize = 32;

/// The engine. Cheap to clone per probe batch; all state is shared.
pub struct Lumscan<T: Transport> {
    transport: Arc<T>,
    config: LumscanConfig,
    /// Request accounting (the load-balancing budget).
    issued: AtomicU64,
    /// Per-(domain, country) invocation counters. Sessions derive from
    /// (target, invocation, attempt), never from global arrival order, so
    /// concurrent studies replay identically and every probe attempt pins
    /// a stable exit machine shared with its connectivity check.
    invocations: Vec<Mutex<HashMap<(u64, u16), u32>>>,
    /// Sessions whose connectivity check passed, with the echoed country.
    verified: Arc<Mutex<HashMap<u64, CountryCode>>>,
}

fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

fn hash_host(host: &str) -> u64 {
    host.bytes().fold(0xcbf29ce484222325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100000001b3)
    })
}

impl<T: Transport + 'static> Lumscan<T> {
    /// Create an engine over `transport`.
    pub fn new(transport: T, config: LumscanConfig) -> Lumscan<T> {
        Lumscan {
            transport: Arc::new(transport),
            config,
            issued: AtomicU64::new(0),
            invocations: (0..INVOCATION_SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            verified: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// Claim the next invocation number for a probe target.
    fn next_invocation(&self, host_hash: u64, country: CountryCode) -> u32 {
        let cidx = country.index().unwrap_or(255) as u16;
        let shard = (host_hash as usize ^ cidx as usize) % INVOCATION_SHARDS;
        let mut map = self.invocations[shard].lock();
        let counter = map.entry((host_hash, cidx)).or_insert(0);
        *counter += 1;
        *counter
    }

    /// Access the underlying transport.
    pub fn transport(&self) -> &T {
        &self.transport
    }

    /// The configuration in use.
    pub fn config(&self) -> &LumscanConfig {
        &self.config
    }

    /// Total transport requests issued so far (excluding connectivity
    /// checks).
    pub fn requests_issued(&self) -> u64 {
        self.issued.load(Ordering::Relaxed)
    }

    /// Probe a single target, with verification and retries.
    pub async fn probe(&self, target: &ProbeTarget) -> ProbeResult {
        let host_hash = hash_host(target.url.host.as_str());
        let invocation = self.next_invocation(host_hash, target.country);
        self.probe_invocation(target, invocation).await
    }

    /// Probe with an explicit invocation number. [`Lumscan::probe_all`]
    /// claims invocations in *target order* before spawning, so identical
    /// studies replay identically regardless of task interleaving.
    pub async fn probe_invocation(&self, target: &ProbeTarget, invocation: u32) -> ProbeResult {
        let mut attempts = 0;
        let mut verified_country = None;
        let mut last_err = FetchError::Timeout;
        let host_hash = hash_host(target.url.host.as_str());
        let country_bits =
            ((target.country.0[0] as u64) << 8) | target.country.0[1] as u64;
        while attempts <= self.config.retries {
            attempts += 1;
            // One fresh exit per attempt, stable under replay.
            let session = SessionId(mix(
                host_hash ^ country_bits.rotate_left(32) ^ ((invocation as u64) << 8) ^ attempts as u64,
            ));

            if self.config.verify_connectivity {
                match self.verify_session(session, target.country).await {
                    Ok(country) => verified_country = Some(country),
                    Err(e) => {
                        // A dead exit: the next attempt derives a new one.
                        last_err = e;
                        continue;
                    }
                }
            }

            let request = Request {
                method: Method::Get,
                url: target.url.clone(),
                headers: self.config.profile.headers(),
            };
            self.issued.fetch_add(1, Ordering::Relaxed);
            match follow_redirects(
                self.transport.as_ref(),
                request,
                target.country,
                session,
                self.config.max_redirects,
            )
            .await
            {
                Ok(chain) => {
                    return ProbeResult {
                        target: target.clone(),
                        attempts,
                        outcome: Ok(chain),
                        verified_country,
                    }
                }
                Err(e) => {
                    let retryable = e.is_retryable();
                    last_err = e;
                    if !retryable {
                        break;
                    }
                    // The next attempt derives a fresh exit machine.
                }
            }
        }
        ProbeResult {
            target: target.clone(),
            attempts,
            outcome: Err(last_err),
            verified_country,
        }
    }

    /// Probe many targets concurrently (bounded by `config.concurrency`),
    /// preserving input order in the output.
    pub async fn probe_all(self: &Arc<Self>, targets: &[ProbeTarget]) -> Vec<ProbeResult> {
        let mut results: Vec<Option<ProbeResult>> = (0..targets.len()).map(|_| None).collect();
        let mut join = JoinSet::new();
        let mut next = 0usize;

        // Claim invocation numbers in target order up front: outcome-to-
        // sample assignment must not depend on task scheduling.
        let invocations: Vec<u32> = targets
            .iter()
            .map(|t| self.next_invocation(hash_host(t.url.host.as_str()), t.country))
            .collect();
        while next < targets.len() || !join.is_empty() {
            while next < targets.len() && join.len() < self.config.concurrency.max(1) {
                let engine = Arc::clone(self);
                let target = targets[next].clone();
                let invocation = invocations[next];
                let idx = next;
                next += 1;
                join.spawn(async move { (idx, engine.probe_invocation(&target, invocation).await) });
            }
            if let Some(done) = join.join_next().await {
                let (idx, result) = done.expect("probe task panicked");
                results[idx] = Some(result);
            }
        }
        results.into_iter().map(|r| r.expect("all slots filled")).collect()
    }

    /// Fetch the proxy-controlled echo page through `session` and parse the
    /// country it reports.
    async fn verify_session(
        &self,
        session: SessionId,
        country: CountryCode,
    ) -> Result<CountryCode, FetchError> {
        {
            let cache = self.verified.lock();
            if let Some(c) = cache.get(&session.0) {
                return Ok(*c);
            }
        }
        let req = Request::get(self.config.check_url.clone());
        let resp = self
            .transport
            .fetch_one(TransportRequest {
                request: req,
                country,
                session,
            })
            .await?;
        let body = resp.body.as_text();
        // The echo page reports `country=XX` among its fields.
        let reported = body
            .split(['&', '\n'])
            .find_map(|kv| kv.strip_prefix("country="))
            .filter(|c| c.len() >= 2 && c.is_char_boundary(2))
            .map(|c| CountryCode::new(&c[..2]))
            .ok_or_else(|| FetchError::MalformedResponse {
                detail: "echo page missing country".to_string(),
            })?;
        let mut cache = self.verified.lock();
        if cache.len() > 65_536 {
            cache.clear();
        }
        cache.insert(session.0, reported);
        Ok(reported)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoblock_http::{Response, StatusCode};
    use geoblock_worldgen::cc;
    use parking_lot::Mutex as PMutex;
    use std::collections::HashMap;

    /// Test transport: scripted per-URL behaviour plus an echo page.
    struct FakeNet {
        /// url -> list of outcomes, consumed per request (last repeats).
        script: PMutex<HashMap<String, Vec<Result<Response, FetchError>>>>,
        log: PMutex<Vec<(String, SessionId)>>,
    }

    impl FakeNet {
        fn new() -> FakeNet {
            FakeNet {
                script: PMutex::new(HashMap::new()),
                log: PMutex::new(Vec::new()),
            }
        }

        fn script(&self, url: &str, outcomes: Vec<Result<Response, FetchError>>) {
            self.script.lock().insert(url.to_string(), outcomes);
        }
    }

    impl Transport for FakeNet {
        async fn fetch_one(&self, req: TransportRequest) -> Result<Response, FetchError> {
            let url = req.request.url.to_string();
            self.log.lock().push((url.clone(), req.session));
            if req.request.url.host.as_str() == "lumtest.io" {
                return Ok(Response::builder(StatusCode::OK)
                    .body(format!("ip=10.1.2.3&country={}", req.country))
                    .finish(req.request.url));
            }
            let mut script = self.script.lock();
            let outcomes = script.get_mut(&url).unwrap_or_else(|| panic!("unscripted url {url}"));
            if outcomes.len() > 1 {
                outcomes.remove(0)
            } else {
                outcomes[0].clone()
            }
        }
    }

    fn ok(url: &str, body: &str) -> Result<Response, FetchError> {
        Ok(Response::builder(StatusCode::OK)
            .body(body)
            .finish(url.parse().unwrap()))
    }

    #[tokio::test]
    async fn probe_verifies_then_fetches() {
        let net = FakeNet::new();
        net.script("http://site.com/", vec![ok("http://site.com/", "hello")]);
        let engine = Lumscan::new(net, LumscanConfig::default());
        let result = engine.probe(&ProbeTarget::http("site.com", cc("IR"))).await;
        assert!(result.responded());
        assert_eq!(result.verified_country, Some(cc("IR")));
        let log = engine.transport().log.lock();
        assert_eq!(log[0].0, "http://lumtest.io/");
        assert_eq!(log[1].0, "http://site.com/");
    }

    #[tokio::test]
    async fn retries_use_fresh_sessions() {
        let net = FakeNet::new();
        net.script(
            "http://flaky.com/",
            vec![
                Err(FetchError::Timeout),
                Err(FetchError::ProxyError { detail: "exit died".into() }),
                ok("http://flaky.com/", "finally"),
            ],
        );
        let engine = Lumscan::new(net, LumscanConfig::default());
        let result = engine.probe(&ProbeTarget::http("flaky.com", cc("RU"))).await;
        assert!(result.responded());
        assert_eq!(result.attempts, 3);
        // The three site fetches must ride three distinct sessions (exits).
        let log = engine.transport().log.lock();
        let mut sessions: Vec<_> = log
            .iter()
            .filter(|(u, _)| u.contains("flaky"))
            .map(|(_, s)| *s)
            .collect();
        assert_eq!(sessions.len(), 3);
        sessions.dedup();
        assert_eq!(sessions.len(), 3, "retries must rotate exits");
    }

    #[tokio::test]
    async fn proxy_refusal_is_not_retried() {
        let net = FakeNet::new();
        net.script(
            "http://banned.com/",
            vec![Err(FetchError::ProxyRefused { reason: "policy".into() })],
        );
        let engine = Lumscan::new(net, LumscanConfig::default());
        let result = engine.probe(&ProbeTarget::http("banned.com", cc("US"))).await;
        assert_eq!(result.attempts, 1);
        assert!(matches!(result.error(), Some(FetchError::ProxyRefused { .. })));
    }

    #[tokio::test]
    async fn exhausted_retries_return_last_error() {
        let net = FakeNet::new();
        net.script("http://dead.com/", vec![Err(FetchError::Timeout)]);
        let cfg = LumscanConfig { retries: 2, ..LumscanConfig::default() };
        let engine = Lumscan::new(net, cfg);
        let result = engine.probe(&ProbeTarget::http("dead.com", cc("US"))).await;
        assert_eq!(result.attempts, 3);
        assert_eq!(result.error(), Some(&FetchError::Timeout));
    }

    #[tokio::test]
    async fn probe_all_preserves_order() {
        let net = FakeNet::new();
        for d in ["a.com", "b.com", "c.com"] {
            net.script(&format!("http://{d}/"), vec![ok(&format!("http://{d}/"), d)]);
        }
        let engine = Arc::new(Lumscan::new(net, LumscanConfig::default()));
        let targets: Vec<_> = ["a.com", "b.com", "c.com"]
            .iter()
            .map(|d| ProbeTarget::http(d, cc("DE")))
            .collect();
        let results = engine.probe_all(&targets).await;
        for (r, d) in results.iter().zip(["a.com", "b.com", "c.com"]) {
            assert_eq!(r.target.url.host.as_str(), d);
            assert!(r.responded());
        }
    }

    #[tokio::test]
    async fn verification_can_be_disabled() {
        let net = FakeNet::new();
        net.script("http://site.com/", vec![ok("http://site.com/", "x")]);
        let cfg = LumscanConfig { verify_connectivity: false, ..LumscanConfig::default() };
        let engine = Lumscan::new(net, cfg);
        let result = engine.probe(&ProbeTarget::http("site.com", cc("FR"))).await;
        assert!(result.responded());
        assert_eq!(result.verified_country, None);
        assert!(engine.transport().log.lock().iter().all(|(u, _)| !u.contains("lumtest")));
    }
}
