//! The Lumscan probing engine.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use geoblock_http::{ClientProfile, FetchError, Method, Request, Url};
use geoblock_worldgen::CountryCode;
use parking_lot::Mutex;

use crate::result::{BatchStats, ProbeResult};
use crate::retry::{CircuitBreaker, RetryPolicy};
use crate::session::SessionId;
use crate::stream::{ProbeSink, ProbeStream};
use crate::transport::{follow_redirects, ProbeTarget, Transport, TransportRequest};

/// Engine configuration.
///
/// Build one with [`LumscanConfig::builder`] (validated) or start from
/// [`LumscanConfig::default`] and adjust fields directly.
#[derive(Debug, Clone)]
pub struct LumscanConfig {
    /// How failed attempts are retried, backed off, budgeted, and how
    /// misbehaving exits are quarantined (§3.2: "repeats each failed
    /// request a configurable number of times").
    pub retry: RetryPolicy,
    /// Redirect-follow limit (the study allows 10).
    pub max_redirects: usize,
    /// Requests allowed per exit machine before rotating.
    pub requests_per_exit: u64,
    /// Number of superproxies to balance across.
    pub superproxies: usize,
    /// Concurrent in-flight probes.
    pub concurrency: usize,
    /// Client profile applied to every probe: header bundle, TLS class,
    /// and JS capability. Every study phase — baseline, confirmation, and
    /// each `SamplingPolicy` round — probes under this identity.
    pub profile: ClientProfile,
    /// When set, every probe is domain-fronted through this host: the
    /// connection (URL host / SNI analogue) goes to the front while the
    /// `Host` header carries the true target. The connectivity check is
    /// never fronted.
    pub front_host: Option<String>,
    /// Verify each new exit's connectivity and geolocation against the
    /// proxy-controlled echo page before using it.
    pub verify_connectivity: bool,
    /// Reject exits whose verified country differs from the probe target's
    /// country (surfaced as an exit-fatal
    /// [`GeolocationMismatch`](FetchError::GeolocationMismatch)). Only
    /// effective when `verify_connectivity` is on.
    pub enforce_geolocation: bool,
    /// The proxy-controlled echo URL used for verification.
    pub check_url: Url,
}

impl Default for LumscanConfig {
    fn default() -> Self {
        LumscanConfig {
            retry: RetryPolicy::default(),
            max_redirects: 10,
            requests_per_exit: 10,
            superproxies: 8,
            concurrency: 64,
            profile: ClientProfile::browser(),
            front_host: None,
            verify_connectivity: true,
            enforce_geolocation: true,
            check_url: Url::http("lumtest.io"),
        }
    }
}

impl LumscanConfig {
    /// Start building a validated configuration.
    pub fn builder() -> LumscanConfigBuilder {
        LumscanConfigBuilder {
            config: LumscanConfig::default(),
        }
    }
}

/// Rejected configuration, naming the offending field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// Which builder field was invalid.
    pub field: &'static str,
    /// Why it was rejected.
    pub reason: String,
}

impl ConfigError {
    /// A rejection of `field` for `reason`.
    pub fn new(field: &'static str, reason: impl Into<String>) -> ConfigError {
        ConfigError {
            field,
            reason: reason.into(),
        }
    }
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid config field `{}`: {}", self.field, self.reason)
    }
}

impl std::error::Error for ConfigError {}

/// Builder for [`LumscanConfig`]; [`build`](LumscanConfigBuilder::build)
/// validates the combination.
#[derive(Debug, Clone)]
pub struct LumscanConfigBuilder {
    config: LumscanConfig,
}

impl LumscanConfigBuilder {
    /// Shorthand: keep the default retry policy but change its retry count.
    pub fn retries(mut self, max_retries: u32) -> Self {
        self.config.retry.max_retries = max_retries;
        self
    }

    /// Replace the whole retry policy.
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.config.retry = retry;
        self
    }

    /// Redirect-follow limit.
    pub fn max_redirects(mut self, max_redirects: usize) -> Self {
        self.config.max_redirects = max_redirects;
        self
    }

    /// Requests allowed per exit machine before rotating.
    pub fn requests_per_exit(mut self, requests_per_exit: u64) -> Self {
        self.config.requests_per_exit = requests_per_exit;
        self
    }

    /// Number of superproxies to balance across.
    pub fn superproxies(mut self, superproxies: usize) -> Self {
        self.config.superproxies = superproxies;
        self
    }

    /// Concurrent in-flight probes.
    pub fn concurrency(mut self, concurrency: usize) -> Self {
        self.config.concurrency = concurrency;
        self
    }

    /// Client profile applied to every probe. Accepts a full
    /// [`ClientProfile`] or a bare [`geoblock_http::HeaderProfile`] (lifted
    /// to the matching full identity).
    pub fn profile(mut self, profile: impl Into<ClientProfile>) -> Self {
        self.config.profile = profile.into();
        self
    }

    /// Domain-front every probe through `front` (see
    /// [`LumscanConfig::front_host`]).
    pub fn front_host(mut self, front: impl Into<String>) -> Self {
        self.config.front_host = Some(front.into());
        self
    }

    /// Toggle connectivity pre-verification.
    pub fn verify_connectivity(mut self, verify: bool) -> Self {
        self.config.verify_connectivity = verify;
        self
    }

    /// Toggle rejection of mis-geolocated exits.
    pub fn enforce_geolocation(mut self, enforce: bool) -> Self {
        self.config.enforce_geolocation = enforce;
        self
    }

    /// The proxy-controlled echo URL used for verification.
    pub fn check_url(mut self, check_url: Url) -> Self {
        self.config.check_url = check_url;
        self
    }

    /// Validate and produce the configuration.
    pub fn build(self) -> Result<LumscanConfig, ConfigError> {
        let c = &self.config;
        if c.concurrency == 0 {
            return Err(ConfigError {
                field: "concurrency",
                reason: "must be at least 1".into(),
            });
        }
        if c.superproxies == 0 {
            return Err(ConfigError {
                field: "superproxies",
                reason: "must be at least 1".into(),
            });
        }
        if c.requests_per_exit == 0 {
            return Err(ConfigError {
                field: "requests_per_exit",
                reason: "must be at least 1".into(),
            });
        }
        if c.max_redirects == 0 {
            return Err(ConfigError {
                field: "max_redirects",
                reason: "must allow at least one redirect".into(),
            });
        }
        if let Some(t) = c.retry.attempt_timeout {
            if t.is_zero() {
                return Err(ConfigError {
                    field: "retry.attempt_timeout",
                    reason: "zero budget would fail every attempt; use None".into(),
                });
            }
        }
        Ok(self.config)
    }
}

const INVOCATION_SHARDS: usize = 32;

/// How many alternate sessions the engine tries when the derived one is
/// quarantined. Bounded so a fully-poisoned neighbourhood degrades to the
/// base session instead of looping.
const QUARANTINE_BUMPS: u64 = 8;

/// The engine. Cheap to clone per probe batch; all state is shared.
pub struct Lumscan<T: Transport> {
    transport: Arc<T>,
    config: LumscanConfig,
    /// Request accounting (the load-balancing budget).
    issued: AtomicU64,
    /// Per-(domain, country) invocation counters. Sessions derive from
    /// (target, invocation, attempt), never from global arrival order, so
    /// concurrent studies replay identically and every probe attempt pins
    /// a stable exit machine shared with its connectivity check.
    invocations: Vec<Mutex<HashMap<(u64, u16), u32>>>,
    /// Sessions whose connectivity check passed, with the echoed country.
    verified: Arc<Mutex<HashMap<u64, CountryCode>>>,
    /// Per-exit failure accounting; quarantined sessions are skipped by
    /// session derivation.
    breaker: CircuitBreaker,
}

fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

fn hash_host(host: &str) -> u64 {
    host.bytes().fold(0xcbf29ce484222325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100000001b3)
    })
}

impl<T: Transport + 'static> Lumscan<T> {
    /// Create an engine over `transport`.
    pub fn new(transport: T, config: LumscanConfig) -> Lumscan<T> {
        let breaker = CircuitBreaker::new(config.retry.breaker_threshold);
        Lumscan {
            transport: Arc::new(transport),
            config,
            issued: AtomicU64::new(0),
            invocations: (0..INVOCATION_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            verified: Arc::new(Mutex::new(HashMap::new())),
            breaker,
        }
    }

    /// Claim the next invocation number for `target`. The streaming
    /// pipeline calls this at spawn time — pulls happen in target order, so
    /// the claim sequence matches what the old batch path produced.
    pub(crate) fn claim_invocation(&self, target: &ProbeTarget) -> u32 {
        self.next_invocation(hash_host(target.url.host.as_str()), target.country)
    }

    /// Claim the next invocation number for a probe target.
    fn next_invocation(&self, host_hash: u64, country: CountryCode) -> u32 {
        let cidx = country.index().unwrap_or(255) as u16;
        let shard = (host_hash as usize ^ cidx as usize) % INVOCATION_SHARDS;
        let mut map = self.invocations[shard].lock();
        let counter = map.entry((host_hash, cidx)).or_insert(0);
        *counter += 1;
        *counter
    }

    /// Advance `target`'s invocation counter by `n` without probing — as if
    /// `n` probes of this (host, country) pair had already been claimed.
    ///
    /// This is the resume path's bridge: exit sessions are derived from
    /// per-pair invocation numbers, so when an orchestrator restores a
    /// checkpoint into a *fresh* engine, the counters of already-probed
    /// pairs must be wound forward to where the interrupted run left them —
    /// otherwise later passes (confirmation resampling) would re-derive the
    /// interrupted run's baseline sessions instead of continuing past them.
    pub fn advance_invocations(&self, target: &ProbeTarget, n: u32) {
        let host_hash = hash_host(target.url.host.as_str());
        let cidx = target.country.index().unwrap_or(255) as u16;
        let shard = (host_hash as usize ^ cidx as usize) % INVOCATION_SHARDS;
        let mut map = self.invocations[shard].lock();
        *map.entry((host_hash, cidx)).or_insert(0) += n;
    }

    /// Access the underlying transport.
    pub fn transport(&self) -> &T {
        &self.transport
    }

    /// The configuration in use.
    pub fn config(&self) -> &LumscanConfig {
        &self.config
    }

    /// The shared circuit breaker (exit quarantine state).
    pub fn breaker(&self) -> &CircuitBreaker {
        &self.breaker
    }

    /// Total transport requests issued so far (excluding connectivity
    /// checks).
    pub fn requests_issued(&self) -> u64 {
        self.issued.load(Ordering::Relaxed)
    }

    /// [`BatchStats::of`] plus engine-side accounting (quarantined exits).
    pub fn batch_stats(&self, results: &[ProbeResult]) -> BatchStats {
        let mut stats = BatchStats::of(results);
        stats.quarantined_exits = self.breaker.quarantined_count();
        stats
    }

    /// Derive the exit session for one attempt, skipping quarantined exits
    /// by bumping a salt (bounded, deterministic given breaker state).
    fn derive_session(
        &self,
        host_hash: u64,
        country_bits: u64,
        invocation: u32,
        attempt: u32,
    ) -> SessionId {
        let base = SessionId(mix(host_hash
            ^ country_bits.rotate_left(32)
            ^ ((invocation as u64) << 8)
            ^ attempt as u64));
        let mut session = base;
        let mut bump = 0u64;
        while bump < QUARANTINE_BUMPS && self.breaker.is_quarantined(session) {
            bump += 1;
            session = SessionId(mix(base.0 ^ (bump << 48)));
        }
        session
    }

    /// Probe a single target, with verification and retries.
    pub async fn probe(&self, target: &ProbeTarget) -> ProbeResult {
        let host_hash = hash_host(target.url.host.as_str());
        let invocation = self.next_invocation(host_hash, target.country);
        self.probe_invocation(target, invocation).await
    }

    /// Probe with an explicit invocation number. [`Lumscan::probe_all`]
    /// claims invocations in *target order* before spawning, so identical
    /// studies replay identically regardless of task interleaving.
    pub async fn probe_invocation(&self, target: &ProbeTarget, invocation: u32) -> ProbeResult {
        let policy = &self.config.retry;
        let mut attempts = 0;
        let mut verified_country = None;
        let mut attempt_errors = Vec::new();
        let mut attempt_sessions = Vec::new();
        let mut last_err = FetchError::Timeout;
        let host_hash = hash_host(target.url.host.as_str());
        let country_bits = ((target.country.0[0] as u64) << 8) | target.country.0[1] as u64;
        while attempts < policy.max_attempts() {
            attempts += 1;
            // One fresh exit per attempt, stable under replay, dodging
            // quarantined households.
            let session = self.derive_session(host_hash, country_bits, invocation, attempts);
            attempt_sessions.push(session);

            let delay = policy.backoff(attempts, session.0);
            if !delay.is_zero() {
                tokio::time::sleep(delay).await;
            }

            let (verified, outcome) = match policy.attempt_timeout {
                Some(budget) => {
                    match tokio::time::timeout(budget, self.attempt(target, session)).await {
                        Ok(out) => out,
                        // The attempt blew its budget: count it as a
                        // transient timeout and rotate.
                        Err(_) => (None, Err(FetchError::Timeout)),
                    }
                }
                None => self.attempt(target, session).await,
            };
            if verified.is_some() {
                verified_country = verified;
            }
            match outcome {
                Ok(chain) => {
                    self.breaker.record_success(session);
                    return ProbeResult {
                        target: target.clone(),
                        attempts,
                        outcome: Ok(chain),
                        verified_country,
                        attempt_errors,
                        attempt_sessions,
                    };
                }
                Err(e) => {
                    let class = e.retryability();
                    self.breaker.record_failure(session, class);
                    last_err = e.clone();
                    attempt_errors.push(e);
                    if !class.should_retry() {
                        break;
                    }
                    // The next attempt derives a fresh exit machine.
                }
            }
        }
        ProbeResult {
            target: target.clone(),
            attempts,
            outcome: Err(last_err),
            verified_country,
            attempt_errors,
            attempt_sessions,
        }
    }

    /// One attempt: verify the exit (if configured), then fetch the target
    /// following redirects. Returns the echoed country alongside the
    /// outcome so callers can attribute geolocation drift.
    async fn attempt(
        &self,
        target: &ProbeTarget,
        session: SessionId,
    ) -> (
        Option<CountryCode>,
        Result<geoblock_http::RedirectChain, FetchError>,
    ) {
        let mut verified = None;
        if self.config.verify_connectivity {
            match self.verify_session(session, target.country).await {
                Ok(country) => {
                    verified = Some(country);
                    if self.config.enforce_geolocation && country != target.country {
                        // The household is not where the proxy claims:
                        // measuring through it would attribute the response
                        // to the wrong vantage.
                        return (
                            verified,
                            Err(FetchError::GeolocationMismatch {
                                wanted: target.country.as_str().to_string(),
                                got: country.as_str().to_string(),
                            }),
                        );
                    }
                }
                // A dead exit: the next attempt derives a new one.
                Err(e) => return (None, Err(e)),
            }
        }

        let mut request = Request {
            method: Method::Get,
            url: target.url.clone(),
            headers: self.config.profile.header_map(),
            tls: self.config.profile.tls,
            js_capable: self.config.profile.js_capable,
        };
        if let Some(front) = &self.config.front_host {
            request = request.fronted(front);
        }
        self.issued.fetch_add(1, Ordering::Relaxed);
        let outcome = follow_redirects(
            self.transport.as_ref(),
            request,
            target.country,
            session,
            self.config.max_redirects,
        )
        .await;
        (verified, outcome)
    }

    /// Probe a lazy stream of targets, yielding `(index, ProbeResult)`
    /// completions as they land. At most `config.concurrency` probes are in
    /// flight; nothing upstream or downstream is materialized. See
    /// [`ProbeStream`] for ordering and panic semantics.
    pub fn probe_stream<I>(self: &Arc<Self>, targets: I) -> ProbeStream<'static, T, I::IntoIter>
    where
        I: IntoIterator<Item = ProbeTarget>,
    {
        ProbeStream::new(Arc::clone(self), targets.into_iter(), None)
    }

    /// [`Lumscan::probe_stream`] with an observer: `sink` sees every spawn
    /// and completion (live progress, gauges) without touching the data
    /// path.
    pub fn probe_stream_with<'s, I>(
        self: &Arc<Self>,
        targets: I,
        sink: &'s mut dyn ProbeSink,
    ) -> ProbeStream<'s, T, I::IntoIter>
    where
        I: IntoIterator<Item = ProbeTarget>,
    {
        ProbeStream::new(Arc::clone(self), targets.into_iter(), Some(sink))
    }

    /// Probe many targets concurrently (bounded by `config.concurrency`),
    /// preserving input order in the output.
    ///
    /// Compatibility wrapper over [`Lumscan::probe_stream`]: it collects the
    /// whole result vector, so it pays O(batch) memory. New code that can
    /// consume completions incrementally should use the stream directly.
    pub async fn probe_all(self: &Arc<Self>, targets: &[ProbeTarget]) -> Vec<ProbeResult> {
        let mut results: Vec<Option<ProbeResult>> = (0..targets.len()).map(|_| None).collect();
        let mut stream = self.probe_stream(targets.iter().cloned());
        while let Some((idx, result)) = stream.next().await {
            results[idx] = Some(result);
        }
        results
            .into_iter()
            .map(|r| r.expect("stream yields every index"))
            .collect()
    }

    /// Fetch the proxy-controlled echo page through `session` and parse the
    /// country it reports.
    async fn verify_session(
        &self,
        session: SessionId,
        country: CountryCode,
    ) -> Result<CountryCode, FetchError> {
        {
            let cache = self.verified.lock();
            if let Some(c) = cache.get(&session.0) {
                return Ok(*c);
            }
        }
        let req = Request::get(self.config.check_url.clone());
        let resp = self
            .transport
            .fetch_one(TransportRequest {
                request: req,
                country,
                session,
            })
            .await?;
        let body = resp.body.as_text();
        // The echo page reports `country=XX` among its fields.
        let reported = body
            .split(['&', '\n'])
            .find_map(|kv| kv.strip_prefix("country="))
            .filter(|c| c.len() >= 2 && c.is_char_boundary(2))
            .map(|c| CountryCode::new(&c[..2]))
            .ok_or_else(|| FetchError::MalformedResponse {
                detail: "echo page missing country".to_string(),
            })?;
        let mut cache = self.verified.lock();
        if cache.len() > 65_536 {
            cache.clear();
        }
        cache.insert(session.0, reported);
        Ok(reported)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoblock_http::{Response, StatusCode};
    use geoblock_worldgen::cc;
    use parking_lot::Mutex as PMutex;
    use std::collections::HashMap;

    /// Test transport: scripted per-URL behaviour plus an echo page.
    struct FakeNet {
        /// url -> list of outcomes, consumed per request (last repeats).
        script: PMutex<HashMap<String, Vec<Result<Response, FetchError>>>>,
        log: PMutex<Vec<(String, SessionId)>>,
        /// When set, the echo page reports this country for every session.
        echo_country: PMutex<Option<String>>,
    }

    impl FakeNet {
        fn new() -> FakeNet {
            FakeNet {
                script: PMutex::new(HashMap::new()),
                log: PMutex::new(Vec::new()),
                echo_country: PMutex::new(None),
            }
        }

        fn script(&self, url: &str, outcomes: Vec<Result<Response, FetchError>>) {
            self.script.lock().insert(url.to_string(), outcomes);
        }
    }

    impl Transport for FakeNet {
        async fn fetch_one(&self, req: TransportRequest) -> Result<Response, FetchError> {
            let url = req.request.url.to_string();
            self.log.lock().push((url.clone(), req.session));
            if req.request.url.host.as_str() == "lumtest.io" {
                let country = self
                    .echo_country
                    .lock()
                    .clone()
                    .unwrap_or_else(|| req.country.as_str().to_string());
                return Ok(Response::builder(StatusCode::OK)
                    .body(format!("ip=10.1.2.3&country={country}"))
                    .finish(req.request.url));
            }
            let mut script = self.script.lock();
            let outcomes = script
                .get_mut(&url)
                .unwrap_or_else(|| panic!("unscripted url {url}"));
            if outcomes.len() > 1 {
                outcomes.remove(0)
            } else {
                outcomes[0].clone()
            }
        }
    }

    fn ok(url: &str, body: &str) -> Result<Response, FetchError> {
        Ok(Response::builder(StatusCode::OK)
            .body(body)
            .finish(url.parse().unwrap()))
    }

    #[tokio::test]
    async fn probe_verifies_then_fetches() {
        let net = FakeNet::new();
        net.script("http://site.com/", vec![ok("http://site.com/", "hello")]);
        let engine = Lumscan::new(net, LumscanConfig::default());
        let result = engine.probe(&ProbeTarget::http("site.com", cc("IR"))).await;
        assert!(result.responded());
        assert_eq!(result.verified_country, Some(cc("IR")));
        assert!(result.attempt_errors.is_empty());
        let log = engine.transport().log.lock();
        assert_eq!(log[0].0, "http://lumtest.io/");
        assert_eq!(log[1].0, "http://site.com/");
    }

    #[tokio::test]
    async fn retries_use_fresh_sessions() {
        let net = FakeNet::new();
        net.script(
            "http://flaky.com/",
            vec![
                Err(FetchError::Timeout),
                Err(FetchError::ProxyError {
                    detail: "exit died".into(),
                }),
                ok("http://flaky.com/", "finally"),
            ],
        );
        let engine = Lumscan::new(net, LumscanConfig::default());
        let result = engine
            .probe(&ProbeTarget::http("flaky.com", cc("RU")))
            .await;
        assert!(result.responded());
        assert_eq!(result.attempts, 3);
        assert_eq!(result.attempt_errors.len(), 2, "two absorbed faults");
        // The three site fetches must ride three distinct sessions (exits).
        let log = engine.transport().log.lock();
        let mut sessions: Vec<_> = log
            .iter()
            .filter(|(u, _)| u.contains("flaky"))
            .map(|(_, s)| *s)
            .collect();
        assert_eq!(sessions.len(), 3);
        sessions.dedup();
        assert_eq!(sessions.len(), 3, "retries must rotate exits");
    }

    #[tokio::test]
    async fn proxy_refusal_is_not_retried() {
        let net = FakeNet::new();
        net.script(
            "http://banned.com/",
            vec![Err(FetchError::ProxyRefused {
                reason: "policy".into(),
            })],
        );
        let engine = Lumscan::new(net, LumscanConfig::default());
        let result = engine
            .probe(&ProbeTarget::http("banned.com", cc("US")))
            .await;
        assert_eq!(result.attempts, 1);
        assert!(matches!(
            result.error(),
            Some(FetchError::ProxyRefused { .. })
        ));
    }

    #[tokio::test]
    async fn exhausted_retries_return_last_error() {
        let net = FakeNet::new();
        net.script("http://dead.com/", vec![Err(FetchError::Timeout)]);
        let cfg = LumscanConfig::builder().retries(2).build().unwrap();
        let engine = Lumscan::new(net, cfg);
        let result = engine.probe(&ProbeTarget::http("dead.com", cc("US"))).await;
        assert_eq!(result.attempts, 3);
        assert_eq!(result.error(), Some(&FetchError::Timeout));
    }

    #[tokio::test]
    async fn probe_all_preserves_order() {
        let net = FakeNet::new();
        for d in ["a.com", "b.com", "c.com"] {
            net.script(
                &format!("http://{d}/"),
                vec![ok(&format!("http://{d}/"), d)],
            );
        }
        let engine = Arc::new(Lumscan::new(net, LumscanConfig::default()));
        let targets: Vec<_> = ["a.com", "b.com", "c.com"]
            .iter()
            .map(|d| ProbeTarget::http(d, cc("DE")))
            .collect();
        let results = engine.probe_all(&targets).await;
        for (r, d) in results.iter().zip(["a.com", "b.com", "c.com"]) {
            assert_eq!(r.target.url.host.as_str(), d);
            assert!(r.responded());
        }
    }

    #[tokio::test]
    async fn verification_can_be_disabled() {
        let net = FakeNet::new();
        net.script("http://site.com/", vec![ok("http://site.com/", "x")]);
        let cfg = LumscanConfig::builder()
            .verify_connectivity(false)
            .build()
            .unwrap();
        let engine = Lumscan::new(net, cfg);
        let result = engine.probe(&ProbeTarget::http("site.com", cc("FR"))).await;
        assert!(result.responded());
        assert_eq!(result.verified_country, None);
        assert!(engine
            .transport()
            .log
            .lock()
            .iter()
            .all(|(u, _)| !u.contains("lumtest")));
    }

    #[tokio::test]
    async fn mislocated_exits_are_rejected_and_quarantined() {
        let net = FakeNet::new();
        *net.echo_country.lock() = Some("DE".to_string());
        net.script("http://site.com/", vec![ok("http://site.com/", "x")]);
        let engine = Lumscan::new(net, LumscanConfig::default());
        let result = engine.probe(&ProbeTarget::http("site.com", cc("IR"))).await;
        // Every exit claims DE, so the probe exhausts its attempts without
        // ever fetching the target.
        assert!(!result.responded());
        assert!(matches!(
            result.error(),
            Some(FetchError::GeolocationMismatch { .. })
        ));
        assert_eq!(result.verified_country, Some(cc("DE")));
        assert!(engine
            .transport()
            .log
            .lock()
            .iter()
            .all(|(u, _)| !u.contains("site.com")));
        // Exit-fatal failures quarantine each tried exit immediately.
        assert_eq!(
            engine.breaker().quarantined_count(),
            result.attempts as usize
        );
    }

    #[tokio::test]
    async fn mismatch_tolerated_when_not_enforced() {
        let net = FakeNet::new();
        *net.echo_country.lock() = Some("DE".to_string());
        net.script("http://site.com/", vec![ok("http://site.com/", "x")]);
        let cfg = LumscanConfig::builder()
            .enforce_geolocation(false)
            .build()
            .unwrap();
        let engine = Lumscan::new(net, cfg);
        let result = engine.probe(&ProbeTarget::http("site.com", cc("IR"))).await;
        assert!(result.responded());
        assert_eq!(
            result.verified_country,
            Some(cc("DE")),
            "drift is still recorded"
        );
    }

    #[tokio::test]
    async fn builder_rejects_zero_concurrency() {
        let err = LumscanConfig::builder().concurrency(0).build().unwrap_err();
        assert_eq!(err.field, "concurrency");
        assert!(LumscanConfig::builder().concurrency(1).build().is_ok());
    }

    #[tokio::test]
    async fn batch_stats_include_quarantine_counts() {
        let net = FakeNet::new();
        net.script("http://dead.com/", vec![Err(FetchError::Timeout)]);
        // Threshold 1: the first transient failure quarantines its exit.
        let cfg = LumscanConfig::builder()
            .retry(RetryPolicy {
                max_retries: 2,
                breaker_threshold: 1,
                ..RetryPolicy::default()
            })
            .build()
            .unwrap();
        let engine = Lumscan::new(net, cfg);
        let result = engine.probe(&ProbeTarget::http("dead.com", cc("US"))).await;
        let stats = engine.batch_stats(std::slice::from_ref(&result));
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.quarantined_exits, 3, "each attempt burned one exit");
        assert_eq!(stats.attempts_histogram, vec![0, 0, 1]);
    }

    #[tokio::test]
    async fn advance_invocations_winds_the_counter_forward() {
        let engine = Lumscan::new(FakeNet::new(), LumscanConfig::default());
        let target = ProbeTarget::http("a.com", cc("US"));
        engine.advance_invocations(&target, 3);
        // The next claim continues where the advanced counter left off —
        // exactly what a fresh engine resuming 3 recorded samples needs.
        assert_eq!(engine.claim_invocation(&target), 4);
        // Other pairs are untouched.
        let other = ProbeTarget::http("b.com", cc("US"));
        assert_eq!(engine.claim_invocation(&other), 1);
        let other_country = ProbeTarget::http("a.com", cc("IR"));
        assert_eq!(engine.claim_invocation(&other_country), 1);
    }
}
