//! Session (exit-machine) allocation.
//!
//! Luminati pins all requests sharing a session identifier to the same exit
//! machine. Lumscan's resource policy (§3.2) allows at most 10 requests per
//! exit, both to avoid over-using any end user's machine and to spread
//! load; the allocator hands out session IDs accordingly. Superproxy
//! assignment rides on the same counter: session `s` talks to superproxy
//! `s % superproxies`.

use std::sync::atomic::{AtomicU64, Ordering};

/// An opaque session identifier; equal IDs pin to the same exit machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub u64);

impl SessionId {
    /// The superproxy this session is balanced onto.
    pub fn superproxy(&self, superproxies: usize) -> usize {
        (self.0 % superproxies.max(1) as u64) as usize
    }
}

/// Hands out sessions such that no session is used for more than
/// `requests_per_exit` requests.
#[derive(Debug)]
pub struct SessionAllocator {
    counter: AtomicU64,
    requests_per_exit: u64,
}

impl SessionAllocator {
    /// Allocator with the paper's 10-requests-per-exit budget.
    pub fn new(requests_per_exit: u64) -> SessionAllocator {
        SessionAllocator {
            counter: AtomicU64::new(0),
            requests_per_exit: requests_per_exit.max(1),
        }
    }

    /// Claim a request slot, returning the session to use for it.
    pub fn next(&self) -> SessionId {
        let ticket = self.counter.fetch_add(1, Ordering::Relaxed);
        SessionId(ticket / self.requests_per_exit)
    }

    /// Burn the remainder of the current session (used after an exit
    /// fails: retries must go out on a fresh machine).
    pub fn rotate(&self) -> SessionId {
        loop {
            let ticket = self.counter.load(Ordering::Relaxed);
            let next_boundary = (ticket / self.requests_per_exit + 1) * self.requests_per_exit;
            if self
                .counter
                .compare_exchange(
                    ticket,
                    next_boundary + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                )
                .is_ok()
            {
                return SessionId(next_boundary / self.requests_per_exit);
            }
        }
    }

    /// Total request slots claimed so far.
    pub fn requests_issued(&self) -> u64 {
        self.counter.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_requests_share_a_session() {
        let a = SessionAllocator::new(10);
        let ids: Vec<u64> = (0..25).map(|_| a.next().0).collect();
        assert!(ids[..10].iter().all(|&s| s == 0));
        assert!(ids[10..20].iter().all(|&s| s == 1));
        assert!(ids[20..].iter().all(|&s| s == 2));
    }

    #[test]
    fn rotate_abandons_current_exit() {
        let a = SessionAllocator::new(10);
        let s0 = a.next();
        let s1 = a.rotate();
        assert!(s1 > s0);
        // Requests after a rotation use the new session.
        assert_eq!(a.next().0, s1.0);
    }

    #[test]
    fn superproxy_balancing_is_round_robin_over_sessions() {
        let counts =
            (0..100u64)
                .map(SessionId)
                .map(|s| s.superproxy(4))
                .fold([0usize; 4], |mut acc, p| {
                    acc[p] += 1;
                    acc
                });
        assert_eq!(counts, [25, 25, 25, 25]);
    }

    #[test]
    fn allocator_is_thread_safe() {
        use std::sync::Arc;
        let a = Arc::new(SessionAllocator::new(10));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let a = a.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    a.next();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(a.requests_issued(), 8000);
    }
}
