//! The streaming probe pipeline.
//!
//! [`Lumscan::probe_all`] is a barrier: it materializes a result slot for
//! every target and returns nothing until the slowest probe finishes. At
//! study scale that shape is the binding constraint — a chunk of
//! `domains × countries × samples` targets sits in memory while one
//! straggling exit holds the whole chunk hostage. [`ProbeStream`] replaces
//! the barrier with a pull-based stream:
//!
//! * targets are **pulled lazily** from an iterator — nothing upstream is
//!   materialized;
//! * at most `config.concurrency` probes are in flight; completions are
//!   yielded as `(index, ProbeResult)` the moment they land, so downstream
//!   consumers classify-and-drop instead of buffering;
//! * [`BatchStats`] are folded in incrementally ([`BatchStats::record`]) and
//!   observable mid-flight;
//! * a panicking probe task is caught ([`FetchError::ProbePanicked`]) and
//!   surfaced as a probe-fatal result for its slot — the stream continues;
//! * an optional [`ProbeSink`] observes every spawn and completion (live
//!   progress, gauges, throughput meters) without touching the data path.
//!
//! # Ordering
//!
//! By default completions arrive in *completion* order. [`ProbeStream::ordered`]
//! switches to index order: completions are held in a bounded reorder buffer
//! and spawning is gated so the buffer never exceeds twice the concurrency —
//! memory stays O(concurrency). Ordered delivery is what the study layer
//! uses, because [`BodyArchive`] retention is order-dependent (each offer
//! updates the per-domain length ceiling) and must replay identically
//! between runs.
//!
//! [`BodyArchive`]: https://docs.rs/geoblock-core

use std::any::Any;
use std::collections::BTreeMap;
use std::future::Future;
use std::panic::AssertUnwindSafe;
use std::pin::Pin;
use std::sync::Arc;
use std::task::Poll;

use geoblock_http::FetchError;
use geoblock_worldgen::CountryCode;
use tokio::task::JoinSet;

use crate::engine::Lumscan;
use crate::result::{BatchStats, ProbeResult};
use crate::transport::{ProbeTarget, Transport};

/// Observer of a [`ProbeStream`]'s lifecycle events.
///
/// All methods have no-op defaults, so implementations override only what
/// they watch. The contract: `started` fires once per probe at spawn time,
/// `completed` fires once per probe (in completion order, even when the
/// stream yields ordered), and `finished` fires exactly once after the last
/// completion. `in_flight` is the number of probes running at that instant —
/// it never exceeds the engine's configured concurrency.
pub trait ProbeSink: Send {
    /// A probe was spawned. `in_flight` counts it.
    fn started(&mut self, index: usize, target: &ProbeTarget, in_flight: usize) {
        let _ = (index, target, in_flight);
    }

    /// A probe completed. `stats` already includes this result.
    fn completed(
        &mut self,
        index: usize,
        result: &ProbeResult,
        stats: &BatchStats,
        in_flight: usize,
    ) {
        let _ = (index, result, stats, in_flight);
    }

    /// The stream is exhausted; `stats` are final (except the engine-side
    /// quarantine count, which [`ProbeStream::into_stats`] fills).
    fn finished(&mut self, stats: &BatchStats) {
        let _ = stats;
    }
}

/// The default observer: sees everything, records nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl ProbeSink for NoopSink {}

/// A recording sink: peaks, tallies, and per-country counts — the memory
/// and liveness gauge used by the bench harness and the bounded-memory
/// acceptance test.
#[derive(Debug, Clone, Default)]
pub struct GaugeSink {
    /// Probes spawned.
    pub started: usize,
    /// Probes completed.
    pub completed: usize,
    /// Highest concurrent in-flight count observed.
    pub peak_in_flight: usize,
    /// Completions that carried no final response.
    pub failed: usize,
    /// Completions that responded only thanks to a retry.
    pub recovered: usize,
    /// Completions per vantage country.
    pub per_country: BTreeMap<CountryCode, usize>,
    /// Whether `finished` has fired.
    pub finished: bool,
}

impl GaugeSink {
    /// A fresh gauge.
    pub fn new() -> GaugeSink {
        GaugeSink::default()
    }
}

impl ProbeSink for GaugeSink {
    fn started(&mut self, _index: usize, _target: &ProbeTarget, in_flight: usize) {
        self.started += 1;
        self.peak_in_flight = self.peak_in_flight.max(in_flight);
    }

    fn completed(
        &mut self,
        _index: usize,
        result: &ProbeResult,
        _stats: &BatchStats,
        _in_flight: usize,
    ) {
        self.completed += 1;
        if !result.responded() {
            self.failed += 1;
        }
        if result.recovered() {
            self.recovered += 1;
        }
        *self.per_country.entry(result.target.country).or_insert(0) += 1;
    }

    fn finished(&mut self, _stats: &BatchStats) {
        self.finished = true;
    }
}

/// A fan-in adapter: many per-shard streams, one underlying sink.
///
/// The sharded orchestrator runs one [`ProbeStream`] per work unit, but a
/// study observer (trace recorder, gauge) wants to see a single pass.
/// `SharedSink` clones hand each unit stream a view onto the same inner
/// sink, with a per-clone index offset so unit-local probe indices land as
/// global plan indices.
///
/// Per-stream `finished` callbacks are swallowed — each unit's stream
/// exhausts independently, and forwarding them would fire the inner sink's
/// `finished` once per unit, violating its exactly-once contract. The
/// owner calls [`finish`](SharedSink::finish) once after the last unit.
pub struct SharedSink<S: ProbeSink> {
    inner: Arc<parking_lot::Mutex<S>>,
    offset: usize,
}

impl<S: ProbeSink> SharedSink<S> {
    /// Wrap a sink for fan-in.
    pub fn new(sink: S) -> SharedSink<S> {
        SharedSink {
            inner: Arc::new(parking_lot::Mutex::new(sink)),
            offset: 0,
        }
    }

    /// A clone whose forwarded probe indices are shifted by `offset` — the
    /// view handed to the unit stream covering plan range `offset..`.
    pub fn at_offset(&self, offset: usize) -> SharedSink<S> {
        SharedSink {
            inner: Arc::clone(&self.inner),
            offset,
        }
    }

    /// Fire the inner sink's `finished` exactly once, after every unit
    /// stream has drained.
    pub fn finish(&self, stats: &BatchStats) {
        self.inner.lock().finished(stats);
    }

    /// Recover the inner sink. Returns `None` while clones are still alive.
    pub fn into_inner(self) -> Option<S> {
        Arc::try_unwrap(self.inner).ok().map(|m| m.into_inner())
    }

    /// Run `f` against the inner sink (inspection mid-run).
    pub fn with<R>(&self, f: impl FnOnce(&mut S) -> R) -> R {
        f(&mut self.inner.lock())
    }
}

impl<S: ProbeSink> Clone for SharedSink<S> {
    fn clone(&self) -> Self {
        SharedSink {
            inner: Arc::clone(&self.inner),
            offset: self.offset,
        }
    }
}

impl<S: ProbeSink> ProbeSink for SharedSink<S> {
    fn started(&mut self, index: usize, target: &ProbeTarget, in_flight: usize) {
        self.inner
            .lock()
            .started(index + self.offset, target, in_flight);
    }

    fn completed(
        &mut self,
        index: usize,
        result: &ProbeResult,
        stats: &BatchStats,
        in_flight: usize,
    ) {
        self.inner
            .lock()
            .completed(index + self.offset, result, stats, in_flight);
    }

    fn finished(&mut self, _stats: &BatchStats) {
        // Swallowed: per-unit streams finish many times; the owner fires
        // the inner sink's `finished` once via `SharedSink::finish`.
    }
}

/// Render a panic payload the way the default hook would.
fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Drive `fut` to completion, converting an unwinding panic into an `Err`
/// carrying the payload. This runs *inside* the spawned task, so a panic
/// never reaches the `JoinSet` — portable across runtimes that cannot
/// recover a task identity from a failed join.
async fn catch_probe_panic<F: Future>(fut: F) -> Result<F::Output, Box<dyn Any + Send + 'static>> {
    let mut fut: Pin<Box<F>> = Box::pin(fut);
    std::future::poll_fn(move |cx| {
        match std::panic::catch_unwind(AssertUnwindSafe(|| fut.as_mut().poll(cx))) {
            Ok(Poll::Ready(out)) => Poll::Ready(Ok(out)),
            Ok(Poll::Pending) => Poll::Pending,
            Err(payload) => Poll::Ready(Err(payload)),
        }
    })
    .await
}

/// The probe-fatal result synthesized for a slot whose task panicked.
fn panicked_result(target: ProbeTarget, payload: Box<dyn Any + Send>) -> ProbeResult {
    ProbeResult {
        target,
        // Zero: the panic pre-empted the attempt accounting, so claiming
        // any attempt count would be an invention.
        attempts: 0,
        outcome: Err(FetchError::ProbePanicked {
            detail: panic_message(payload.as_ref()),
        }),
        verified_country: None,
        attempt_errors: Vec::new(),
        attempt_sessions: Vec::new(),
    }
}

/// An in-flight probe stream over a lazy target iterator. Created by
/// [`Lumscan::probe_stream`] / [`Lumscan::probe_stream_with`].
///
/// Pull completions with [`next`](ProbeStream::next); the stream spawns
/// replacements as slots free up, so in-flight work stays at the configured
/// concurrency until the iterator runs dry.
pub struct ProbeStream<'s, T: Transport + 'static, I: Iterator<Item = ProbeTarget>> {
    engine: Arc<Lumscan<T>>,
    targets: std::iter::Fuse<I>,
    join: JoinSet<(usize, ProbeResult)>,
    /// Index the next spawned probe will carry.
    next_index: usize,
    /// In ordered mode, the next index to yield.
    next_ordered: usize,
    /// Ordered-mode reorder buffer (bounded by the spawn gate).
    buffered: BTreeMap<usize, ProbeResult>,
    ordered: bool,
    stats: BatchStats,
    sink: Option<&'s mut dyn ProbeSink>,
    done: bool,
}

impl<'s, T: Transport + 'static, I: Iterator<Item = ProbeTarget>> ProbeStream<'s, T, I> {
    pub(crate) fn new(
        engine: Arc<Lumscan<T>>,
        targets: I,
        sink: Option<&'s mut dyn ProbeSink>,
    ) -> ProbeStream<'s, T, I> {
        ProbeStream {
            engine,
            targets: targets.fuse(),
            join: JoinSet::new(),
            next_index: 0,
            next_ordered: 0,
            buffered: BTreeMap::new(),
            ordered: false,
            stats: BatchStats::default(),
            sink,
            done: false,
        }
    }

    /// Switch to index-ordered delivery: completions are yielded strictly
    /// in target order, held in a reorder buffer bounded at twice the
    /// concurrency (spawning is gated, so memory stays O(concurrency) and
    /// in-flight probes still never exceed the configured limit).
    pub fn ordered(mut self) -> Self {
        self.ordered = true;
        self
    }

    /// The running statistics over everything yielded so far.
    pub fn stats(&self) -> &BatchStats {
        &self.stats
    }

    /// Finish the stream and return its statistics, including the engine's
    /// quarantine count — the streaming analogue of
    /// [`Lumscan::batch_stats`].
    pub fn into_stats(self) -> BatchStats {
        let mut stats = self.stats;
        stats.quarantined_exits = self.engine.breaker().quarantined_count();
        stats
    }

    fn concurrency(&self) -> usize {
        self.engine.config().concurrency.max(1)
    }

    /// Ordered-mode spawn gate: in-flight + buffered + yield-pending may
    /// not exceed this, or a straggler at `next_ordered` could make the
    /// reorder buffer grow without bound.
    fn window(&self) -> usize {
        self.concurrency() * 2
    }

    /// Top up the join set from the target iterator.
    fn refill(&mut self) {
        loop {
            if self.join.len() >= self.concurrency() {
                break;
            }
            if self.ordered && self.next_index - self.next_ordered >= self.window() {
                break;
            }
            let Some(target) = self.targets.next() else {
                break;
            };
            let idx = self.next_index;
            self.next_index += 1;
            // Invocations are claimed here, in pull order (== target
            // order), so outcome-to-sample assignment never depends on
            // task scheduling — the same contract probe_all upheld.
            let invocation = self.engine.claim_invocation(&target);
            if let Some(sink) = self.sink.as_deref_mut() {
                sink.started(idx, &target, self.join.len() + 1);
            }
            let engine = Arc::clone(&self.engine);
            self.join.spawn(async move {
                let caught = catch_probe_panic(engine.probe_invocation(&target, invocation)).await;
                let result = match caught {
                    Ok(result) => result,
                    Err(payload) => panicked_result(target, payload),
                };
                (idx, result)
            });
        }
    }

    /// Pull the next completion, spawning replacements as slots free up.
    /// Returns `None` once every target has been probed and yielded.
    pub async fn next(&mut self) -> Option<(usize, ProbeResult)> {
        loop {
            if self.ordered {
                if let Some(result) = self.buffered.remove(&self.next_ordered) {
                    let idx = self.next_ordered;
                    self.next_ordered += 1;
                    return Some((idx, result));
                }
            }
            self.refill();
            match self.join.join_next().await {
                Some(Ok((idx, result))) => {
                    self.stats.record(&result);
                    if let Some(sink) = self.sink.as_deref_mut() {
                        sink.completed(idx, &result, &self.stats, self.join.len());
                    }
                    if self.ordered {
                        self.buffered.insert(idx, result);
                    } else {
                        return Some((idx, result));
                    }
                }
                // Probe panics are caught inside the task, so a join error
                // can only mean external cancellation — skip the slot.
                Some(Err(_)) => continue,
                None => {
                    if self.ordered && !self.buffered.is_empty() {
                        // Everything spawned has completed; the next index
                        // is sitting in the buffer.
                        continue;
                    }
                    if !self.done {
                        self.done = true;
                        if let Some(sink) = self.sink.as_deref_mut() {
                            sink.finished(&self.stats);
                        }
                    }
                    return None;
                }
            }
        }
    }

    /// Drain the stream, discarding results, and return the final
    /// statistics. For consumers that only want the aggregate (reliability
    /// legs, throughput meters) — bodies are dropped the moment they land.
    pub async fn drain(mut self) -> BatchStats {
        while self.next().await.is_some() {}
        self.into_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::LumscanConfig;
    use crate::transport::TransportRequest;
    use geoblock_http::{Response, StatusCode};
    use geoblock_worldgen::cc;

    /// Serves every host; panics on hosts containing "boom".
    struct PanicOn;

    impl Transport for PanicOn {
        async fn fetch_one(&self, req: TransportRequest) -> Result<Response, FetchError> {
            let host = req.request.url.host.as_str().to_string();
            if host.contains("boom") {
                panic!("transport exploded on {host}");
            }
            let body = if host == "lumtest.io" {
                format!("ip=10.0.0.1&country={}", req.country)
            } else {
                format!("<html>{host}</html>")
            };
            Ok(Response::builder(StatusCode::OK)
                .body(body)
                .finish(req.request.url))
        }
    }

    fn targets(hosts: &[&str]) -> Vec<ProbeTarget> {
        hosts
            .iter()
            .map(|h| ProbeTarget::http(h, cc("US")))
            .collect()
    }

    fn engine(concurrency: usize) -> Arc<Lumscan<PanicOn>> {
        let config = LumscanConfig::builder()
            .concurrency(concurrency)
            .build()
            .expect("valid test config");
        Arc::new(Lumscan::new(PanicOn, config))
    }

    #[tokio::test]
    async fn stream_yields_every_target() {
        let engine = engine(2);
        let mut stream = engine.probe_stream(targets(&["a.com", "b.com", "c.com"]));
        let mut seen = Vec::new();
        while let Some((idx, result)) = stream.next().await {
            assert!(result.responded());
            seen.push(idx);
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2]);
        let stats = stream.into_stats();
        assert_eq!(stats.total, 3);
        assert_eq!(stats.responded, 3);
    }

    #[tokio::test]
    async fn ordered_stream_yields_in_index_order() {
        let engine = engine(4);
        let hosts: Vec<String> = (0..25).map(|i| format!("host-{i}.example")).collect();
        let host_refs: Vec<&str> = hosts.iter().map(String::as_str).collect();
        let mut stream = engine.probe_stream(targets(&host_refs)).ordered();
        let mut expected = 0usize;
        while let Some((idx, _)) = stream.next().await {
            assert_eq!(idx, expected, "ordered mode must yield in index order");
            expected += 1;
        }
        assert_eq!(expected, 25);
    }

    #[tokio::test]
    async fn panicking_probe_poisons_only_its_slot() {
        let engine = engine(2);
        let mut stream = engine
            .probe_stream(targets(&["a.com", "boom.com", "c.com"]))
            .ordered();
        let mut results = Vec::new();
        while let Some((idx, result)) = stream.next().await {
            results.push((idx, result));
        }
        assert_eq!(results.len(), 3, "the stream must survive the panic");
        assert!(results[0].1.responded());
        assert!(results[2].1.responded());
        match results[1].1.error() {
            Some(FetchError::ProbePanicked { detail }) => {
                assert!(detail.contains("boom.com"), "payload carried: {detail}");
            }
            other => panic!("expected ProbePanicked, got {other:?}"),
        }
        let stats = stream.into_stats();
        assert_eq!(stats.responded, 2);
        assert_eq!(stats.failed, 1);
        assert_eq!(
            stats.fault_counts.get("panic"),
            None,
            "panic is terminal, not an attempt error"
        );
    }

    #[tokio::test]
    async fn sink_observes_lifecycle_and_bounds() {
        let engine = engine(3);
        let hosts: Vec<String> = (0..40).map(|i| format!("h{i}.example")).collect();
        let host_refs: Vec<&str> = hosts.iter().map(String::as_str).collect();
        let mut sink = GaugeSink::new();
        {
            let mut stream = engine.probe_stream_with(targets(&host_refs), &mut sink);
            while stream.next().await.is_some() {}
        }
        assert_eq!(sink.started, 40);
        assert_eq!(sink.completed, 40);
        assert!(sink.finished, "finished must fire");
        assert!(
            sink.peak_in_flight <= 3,
            "in-flight {} exceeded concurrency 3",
            sink.peak_in_flight
        );
        assert_eq!(sink.per_country.get(&cc("US")), Some(&40));
    }

    #[tokio::test]
    async fn shared_sink_fans_in_with_global_indices() {
        #[derive(Default)]
        struct SeenSink {
            indices: Vec<usize>,
            finishes: usize,
        }
        impl ProbeSink for SeenSink {
            fn completed(
                &mut self,
                index: usize,
                _result: &ProbeResult,
                _stats: &BatchStats,
                _in_flight: usize,
            ) {
                self.indices.push(index);
            }
            fn finished(&mut self, _stats: &BatchStats) {
                self.finishes += 1;
            }
        }

        let engine = engine(2);
        let shared = SharedSink::new(SeenSink::default());
        // Two "unit" streams share the sink; the second is offset past the
        // first unit's index range.
        {
            let mut view = shared.at_offset(0);
            let mut stream = engine.probe_stream_with(targets(&["a.com", "b.com"]), &mut view);
            while stream.next().await.is_some() {}
        }
        {
            let mut view = shared.at_offset(2);
            let mut stream = engine.probe_stream_with(targets(&["c.com", "d.com"]), &mut view);
            while stream.next().await.is_some() {}
        }
        assert_eq!(
            shared.with(|s| s.finishes),
            0,
            "per-stream finished must be swallowed"
        );
        shared.finish(&BatchStats::default());
        let seen = shared.into_inner().expect("no live clones remain");
        assert_eq!(seen.finishes, 1, "owner-driven finish fires exactly once");
        let mut indices = seen.indices;
        indices.sort_unstable();
        assert_eq!(indices, vec![0, 1, 2, 3], "offsets map to global indices");
    }

    #[tokio::test]
    async fn drain_matches_probe_all_stats() {
        let hosts: Vec<String> = (0..12).map(|i| format!("d{i}.example")).collect();
        let host_refs: Vec<&str> = hosts.iter().map(String::as_str).collect();
        let streamed = engine(4).probe_stream(targets(&host_refs)).drain().await;
        let batch_engine = engine(4);
        let results = batch_engine.probe_all(&targets(&host_refs)).await;
        let batch = batch_engine.batch_stats(&results);
        assert_eq!(streamed, batch);
    }
}
