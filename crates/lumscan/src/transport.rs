//! The transport abstraction and redirect-chain following.

use std::future::Future;

use geoblock_http::{FetchError, Hop, RedirectChain, Request, Response};
use geoblock_worldgen::CountryCode;

use crate::session::SessionId;

/// A (URL, country) pair to probe — the unit of the whole study.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeTarget {
    /// The URL to fetch.
    pub url: geoblock_http::Url,
    /// The country the request must exit from.
    pub country: CountryCode,
}

impl ProbeTarget {
    /// Probe `domain`'s home page from `country` over plain HTTP, the way
    /// the study requests each test-list entry.
    pub fn http(domain: &str, country: CountryCode) -> ProbeTarget {
        ProbeTarget {
            url: geoblock_http::Url::http(domain),
            country,
        }
    }
}

/// One transport-level request: a single HTTP exchange (no redirect
/// following — the engine follows redirects itself so that every hop's
/// response is observable).
#[derive(Debug, Clone)]
pub struct TransportRequest {
    /// The HTTP request.
    pub request: Request,
    /// Exit country.
    pub country: CountryCode,
    /// Session identity; transports that pool exits (Luminati) pin one exit
    /// machine per session, which is how the ≤10-requests-per-exit policy
    /// is enforced by the caller.
    pub session: SessionId,
}

/// A vantage-point transport: performs one HTTP exchange from a given
/// country.
///
/// Implementations: the simulated Luminati proxy network
/// (`geoblock_proxynet::LuminatiNetwork`), simulated VPS clients
/// (`geoblock_netsim::VpsTransport`), and test doubles.
pub trait Transport: Send + Sync {
    /// Perform one request/response exchange.
    fn fetch_one(
        &self,
        req: TransportRequest,
    ) -> impl Future<Output = Result<Response, FetchError>> + Send;
}

/// Follow redirects up to `max_redirects`, producing the full chain.
///
/// The CDN-population detection of §5.1.1 needs *every* hop's headers, so
/// the chain retains each request/response pair. Exceeding the limit (the
/// study allows 10) is an error — "lengthy redirect chains" count as
/// failures in the coverage statistics.
pub async fn follow_redirects<T: Transport>(
    transport: &T,
    mut request: Request,
    country: CountryCode,
    session: SessionId,
    max_redirects: usize,
) -> Result<RedirectChain, FetchError> {
    let mut hops = Vec::new();
    loop {
        let response = transport
            .fetch_one(TransportRequest {
                request: request.clone(),
                country,
                session,
            })
            .await?;
        let target = response.redirect_target().map(str::to_string);
        let url = response.url.clone();
        hops.push(Hop {
            request: request.clone(),
            response,
        });
        match target {
            None => return Ok(RedirectChain::new(hops)),
            Some(location) => {
                if hops.len() > max_redirects {
                    return Err(FetchError::TooManyRedirects {
                        limit: max_redirects,
                    });
                }
                let next = url.join(&location).map_err(|e| FetchError::BadRedirect {
                    location: location.clone(),
                    cause: e,
                })?;
                let headers = request.headers.clone();
                request = Request {
                    method: request.method,
                    url: next,
                    headers,
                    // The client identity rides across redirect hops: the
                    // same TLS stack reconnects and the same runtime (or
                    // lack of one) faces any challenge on the next hop.
                    tls: request.tls,
                    js_capable: request.js_capable,
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoblock_http::{Response, StatusCode};
    use geoblock_worldgen::cc;
    use parking_lot::Mutex;

    /// A scripted transport for engine tests.
    pub(crate) struct Scripted {
        pub responses: Mutex<Vec<Result<Response, FetchError>>>,
        pub log: Mutex<Vec<TransportRequest>>,
    }

    impl Scripted {
        pub fn new(responses: Vec<Result<Response, FetchError>>) -> Scripted {
            Scripted {
                responses: Mutex::new(responses),
                log: Mutex::new(Vec::new()),
            }
        }
    }

    impl Transport for Scripted {
        async fn fetch_one(&self, req: TransportRequest) -> Result<Response, FetchError> {
            self.log.lock().push(req);
            let mut q = self.responses.lock();
            if q.is_empty() {
                Err(FetchError::Timeout)
            } else {
                q.remove(0)
            }
        }
    }

    fn ok(url: &str) -> Result<Response, FetchError> {
        Ok(Response::builder(StatusCode::OK)
            .body("<html>hi</html>")
            .finish(url.parse().unwrap()))
    }

    fn redirect(url: &str, to: &str) -> Result<Response, FetchError> {
        Ok(Response::builder(StatusCode::FOUND)
            .header("Location", to)
            .finish(url.parse().unwrap()))
    }

    #[tokio::test]
    async fn follows_simple_chain() {
        let t = Scripted::new(vec![
            redirect("http://a.com/", "https://a.com/"),
            redirect("https://a.com/", "/home"),
            ok("https://a.com/home"),
        ]);
        let chain = follow_redirects(
            &t,
            Request::get("http://a.com/".parse().unwrap()),
            cc("US"),
            SessionId(1),
            10,
        )
        .await
        .unwrap();
        assert_eq!(chain.redirect_count(), 2);
        assert_eq!(chain.final_response().status, StatusCode::OK);
        // Each hop's request URL follows the Location headers.
        let log = t.log.lock();
        assert_eq!(log[1].request.url.to_string(), "https://a.com/");
        assert_eq!(log[2].request.url.to_string(), "https://a.com/home");
    }

    #[tokio::test]
    async fn redirect_loop_is_an_error() {
        let mut loops = Vec::new();
        for _ in 0..12 {
            loops.push(redirect("http://a.com/", "http://a.com/"));
        }
        let t = Scripted::new(loops);
        let err = follow_redirects(
            &t,
            Request::get("http://a.com/".parse().unwrap()),
            cc("US"),
            SessionId(1),
            10,
        )
        .await
        .unwrap_err();
        assert!(matches!(err, FetchError::TooManyRedirects { limit: 10 }));
    }

    #[tokio::test]
    async fn transport_error_propagates() {
        let t = Scripted::new(vec![Err(FetchError::Timeout)]);
        let err = follow_redirects(
            &t,
            Request::get("http://a.com/".parse().unwrap()),
            cc("US"),
            SessionId(1),
            10,
        )
        .await
        .unwrap_err();
        assert_eq!(err, FetchError::Timeout);
    }

    #[tokio::test]
    async fn headers_carry_across_hops() {
        let t = Scripted::new(vec![
            redirect("http://a.com/", "https://b.com/"),
            ok("https://b.com/"),
        ]);
        let req = Request::get("http://a.com/".parse().unwrap()).header("User-Agent", "Lumscan");
        follow_redirects(&t, req, cc("US"), SessionId(1), 10)
            .await
            .unwrap();
        let log = t.log.lock();
        assert_eq!(log[1].request.headers.get("user-agent"), Some("Lumscan"));
    }
}
