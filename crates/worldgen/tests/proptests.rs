//! Property-based tests for the world generator: CountrySet vs a model,
//! population determinism and invertibility, policy sanity.

use std::collections::BTreeSet;

use geoblock_worldgen::country::{registry, CountryCode, CountrySet};
use geoblock_worldgen::{AlexaPopulation, Band};
use proptest::prelude::*;

fn code_strategy() -> impl Strategy<Value = CountryCode> {
    proptest::sample::select(registry().iter().map(|c| c.code).collect::<Vec<_>>())
}

proptest! {
    #[test]
    fn country_set_matches_btreeset_model(
        ops in proptest::collection::vec((code_strategy(), any::<bool>()), 0..40),
    ) {
        let mut set = CountrySet::new();
        let mut model: BTreeSet<CountryCode> = BTreeSet::new();
        for (code, insert) in ops {
            if insert {
                set.insert(code);
                model.insert(code);
            } else {
                set.remove(code);
                model.remove(&code);
            }
            prop_assert_eq!(set.len(), model.len());
        }
        // Iteration order and membership agree with the model.
        let from_set: Vec<CountryCode> = set.iter().collect();
        let from_model: Vec<CountryCode> = model.iter().copied().collect();
        prop_assert_eq!(from_set, from_model);
        for info in registry() {
            prop_assert_eq!(set.contains(info.code), model.contains(&info.code));
        }
    }

    #[test]
    fn union_is_commutative_and_idempotent(
        a in proptest::collection::vec(code_strategy(), 0..12),
        b in proptest::collection::vec(code_strategy(), 0..12),
    ) {
        let sa = CountrySet::from_codes(a);
        let sb = CountrySet::from_codes(b);
        prop_assert_eq!(sa.union(&sb), sb.union(&sa));
        prop_assert_eq!(sa.union(&sa), sa);
        prop_assert!(sa.union(&sb).len() <= sa.len() + sb.len());
        prop_assert!(sa.union(&sb).len() >= sa.len().max(sb.len()));
    }

    #[test]
    fn specs_are_deterministic_and_invertible(seed in any::<u64>(), rank in 1u32..100_000) {
        let pop = AlexaPopulation::new(seed, 100_000);
        let a = pop.spec(rank);
        let b = pop.spec(rank);
        prop_assert_eq!(&a.name, &b.name);
        prop_assert_eq!(a.category, b.category);
        prop_assert_eq!(a.policy_seed, b.policy_seed);
        prop_assert_eq!(&a.providers, &b.providers);
        // Name → rank inversion.
        prop_assert_eq!(pop.rank_of(&a.name), Some(rank));
        prop_assert_eq!(Band::of(rank), if rank <= 10_000 { Band::Top10k } else { Band::Deep });
    }

    #[test]
    fn policies_are_structurally_sane(seed in any::<u64>(), rank in 1u32..50_000) {
        let pop = AlexaPopulation::new(seed, 50_000);
        let spec = pop.spec(rank);
        prop_assert!(spec.providers.len() <= 2, "{:?}", spec.providers);
        prop_assert!((1_000..=64_000).contains(&spec.base_page_bytes));
        // Geoblocking implies a CDN front or an origin block page.
        if !spec.policy.geoblocked.is_empty() {
            prop_assert!(!spec.providers.is_empty(), "{} blocks without a CDN", spec.name);
        }
        if spec.policy.origin_block_kind.is_some() {
            prop_assert!(
                !spec.policy.origin_blocked.is_empty() || spec.policy.crimea_only
                    || spec.name.starts_with("airbnb."),
                "{}: origin kind without blocked countries",
                spec.name
            );
        }
        // AppEngine sanctions only on AppEngine-hosted domains.
        if spec.policy.appengine_sanctions {
            prop_assert!(
                spec.uses(geoblock_blockpages::Provider::AppEngine),
                "{}",
                spec.name
            );
        }
    }
}
