//! FortiGuard-style website categories.
//!
//! The study classifies every test-list domain with FortiGuard and removes
//! "dangerous or sensitive" categories before probing from end-user devices
//! (§3.3, §4.1.1): pornography, weapons, spam, malicious content, plus (for
//! the Top-1M pass) violence, drugs, dating, censorship circumvention, and
//! anything uncategorised. The safe categories are the row labels of
//! Tables 3, 4, and 8.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A website category, matching the taxonomy in the paper's tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Category {
    // ---- safe categories (table rows) ----
    Advertising,
    Auctions,
    Business,
    ChildEducation,
    Education,
    Entertainment,
    FinanceAndBanking,
    Freeware,
    Games,
    HealthAndWellness,
    InformationTechnology,
    JobSearch,
    NewsAndMedia,
    Newsgroups,
    PersonalVehicles,
    PersonalWebsites,
    Reference,
    Shopping,
    SocietyAndLifestyle,
    Sports,
    Travel,
    WebHosting,
    // ---- risky categories (filtered before probing) ----
    Pornography,
    Weapons,
    Spam,
    Malicious,
    Drugs,
    Dating,
    Violence,
    Circumvention,
    Unknown,
}

impl Category {
    /// All categories, safe first then risky, in a stable order.
    pub const ALL: [Category; 31] = [
        Category::Advertising,
        Category::Auctions,
        Category::Business,
        Category::ChildEducation,
        Category::Education,
        Category::Entertainment,
        Category::FinanceAndBanking,
        Category::Freeware,
        Category::Games,
        Category::HealthAndWellness,
        Category::InformationTechnology,
        Category::JobSearch,
        Category::NewsAndMedia,
        Category::Newsgroups,
        Category::PersonalVehicles,
        Category::PersonalWebsites,
        Category::Reference,
        Category::Shopping,
        Category::SocietyAndLifestyle,
        Category::Sports,
        Category::Travel,
        Category::WebHosting,
        Category::Pornography,
        Category::Weapons,
        Category::Spam,
        Category::Malicious,
        Category::Drugs,
        Category::Dating,
        Category::Violence,
        Category::Circumvention,
        Category::Unknown,
    ];

    /// Whether the study's ethics filter removes this category before
    /// probing from residential devices.
    pub fn is_risky(&self) -> bool {
        matches!(
            self,
            Category::Pornography
                | Category::Weapons
                | Category::Spam
                | Category::Malicious
                | Category::Drugs
                | Category::Dating
                | Category::Violence
                | Category::Circumvention
                | Category::Unknown
        )
    }

    /// Table row label.
    pub fn label(&self) -> &'static str {
        match self {
            Category::Advertising => "Advertising",
            Category::Auctions => "Auctions",
            Category::Business => "Business",
            Category::ChildEducation => "Child Education",
            Category::Education => "Education",
            Category::Entertainment => "Entertainment",
            Category::FinanceAndBanking => "Finance and Banking",
            Category::Freeware => "Freeware and Software Downloads",
            Category::Games => "Games",
            Category::HealthAndWellness => "Health and Wellness",
            Category::InformationTechnology => "Information Technology",
            Category::JobSearch => "Job Search",
            Category::NewsAndMedia => "News and Media",
            Category::Newsgroups => "Newsgroups and Message Boards",
            Category::PersonalVehicles => "Personal Vehicles",
            Category::PersonalWebsites => "Personal Websites and Blogs",
            Category::Reference => "Reference",
            Category::Shopping => "Shopping",
            Category::SocietyAndLifestyle => "Society and Lifestyle",
            Category::Sports => "Sports",
            Category::Travel => "Travel",
            Category::WebHosting => "Web Hosting",
            Category::Pornography => "Pornography",
            Category::Weapons => "Weapons",
            Category::Spam => "Spam",
            Category::Malicious => "Malicious Websites",
            Category::Drugs => "Drugs",
            Category::Dating => "Dating",
            Category::Violence => "Violence",
            Category::Circumvention => "Proxy Avoidance",
            Category::Unknown => "Unrated",
        }
    }

    /// Weights for drawing a domain's category in the Top-10K rank band,
    /// derived from the "Tested" column of Table 4 (safe categories) plus
    /// the ~20% of the Top 10K that the safety filter removed.
    pub fn top10k_weights() -> Vec<(Category, f64)> {
        // Table 4 tested counts (of 8,003 safe domains; the table's 6,766
        // plus a remainder spread over small categories).
        let safe: &[(Category, f64)] = &[
            (Category::InformationTechnology, 1239.0),
            (Category::NewsAndMedia, 938.0),
            (Category::Shopping, 787.0),
            (Category::Business, 758.0),
            (Category::Education, 583.0),
            (Category::FinanceAndBanking, 454.0),
            (Category::Entertainment, 442.0),
            (Category::Games, 348.0),
            (Category::Sports, 179.0),
            (Category::Reference, 176.0),
            (Category::Travel, 168.0),
            (Category::Newsgroups, 143.0),
            (Category::Advertising, 120.0),
            (Category::Freeware, 115.0),
            (Category::JobSearch, 97.0),
            (Category::HealthAndWellness, 92.0),
            (Category::PersonalVehicles, 78.0),
            (Category::WebHosting, 41.0),
            (Category::ChildEducation, 8.0),
            // Remainder of the 8,003 not in Table 4's 20 rows:
            (Category::SocietyAndLifestyle, 420.0),
            (Category::PersonalWebsites, 380.0),
            (Category::Auctions, 80.0),
        ];
        let safe_total: f64 = safe.iter().map(|(_, w)| w).sum();
        // 10,000 → 8,003 safe (19.97% filtered); the filter is the union of
        // risky categories and Citizen-Lab membership (~2.8%), so the risky
        // share itself is ~17.2%.
        let risky_total = safe_total * (10_000.0 - 8_003.0) / 8_003.0 * 0.84;
        let mut weights: Vec<(Category, f64)> = safe.to_vec();
        for (cat, share) in [
            (Category::Pornography, 0.38),
            (Category::Unknown, 0.22),
            (Category::Malicious, 0.08),
            (Category::Spam, 0.06),
            (Category::Dating, 0.10),
            (Category::Drugs, 0.05),
            (Category::Circumvention, 0.05),
            (Category::Weapons, 0.03),
            (Category::Violence, 0.03),
        ] {
            weights.push((cat, risky_total * share));
        }
        weights
    }

    /// Weights for the deep Top-1M band, derived from Table 8's "Tested"
    /// column (the category mix of CDN customers deeper in the list skews
    /// toward Business/IT and away from News).
    pub fn top1m_weights() -> Vec<(Category, f64)> {
        let safe: &[(Category, f64)] = &[
            (Category::Business, 1176.0),
            (Category::InformationTechnology, 1016.0),
            (Category::Shopping, 418.0),
            (Category::NewsAndMedia, 345.0),
            (Category::Education, 239.0),
            (Category::Games, 206.0),
            (Category::PersonalWebsites, 176.0),
            (Category::Travel, 153.0),
            (Category::SocietyAndLifestyle, 148.0),
            (Category::HealthAndWellness, 146.0),
            (Category::Sports, 121.0),
            (Category::FinanceAndBanking, 108.0),
            (Category::Reference, 81.0),
            (Category::PersonalVehicles, 79.0),
            (Category::JobSearch, 42.0),
            // Table 8's "Other" row (1,008) spread over remaining safe cats:
            (Category::Entertainment, 320.0),
            (Category::Advertising, 180.0),
            (Category::Newsgroups, 130.0),
            (Category::Freeware, 130.0),
            (Category::WebHosting, 120.0),
            (Category::Auctions, 88.0),
            (Category::ChildEducation, 40.0),
        ];
        let safe_total: f64 = safe.iter().map(|(_, w)| w).sum();
        // Top-1M filter: 152,001 → 123,614 safe (18.7% removed), of which
        // ~1.2% is Citizen-Lab membership.
        let risky_total = safe_total * (152_001.0 - 123_614.0) / 123_614.0 * 0.94;
        let mut weights: Vec<(Category, f64)> = safe.to_vec();
        for (cat, share) in [
            (Category::Pornography, 0.30),
            (Category::Unknown, 0.30),
            (Category::Malicious, 0.09),
            (Category::Spam, 0.07),
            (Category::Dating, 0.09),
            (Category::Drugs, 0.05),
            (Category::Circumvention, 0.04),
            (Category::Weapons, 0.03),
            (Category::Violence, 0.03),
        ] {
            weights.push((cat, risky_total * share));
        }
        weights
    }

    /// Relative geoblocking propensity of a domain in this category
    /// (multiplier around 1.0), derived from the "Geoblocked" rates of
    /// Tables 4 and 8. Shopping and Personal Vehicles sites geoblock far
    /// above base rate; Education far below.
    pub fn geoblock_propensity(&self) -> f64 {
        match self {
            Category::ChildEducation => 5.0,
            Category::PersonalVehicles => 5.0,
            Category::Advertising => 3.2,
            Category::Shopping => 3.4,
            Category::JobSearch => 2.4,
            Category::Auctions => 3.4,
            Category::Travel => 1.9,
            Category::Newsgroups => 1.6,
            Category::WebHosting => 1.4,
            Category::Business => 1.05,
            Category::Sports => 1.0,
            Category::SocietyAndLifestyle => 1.0,
            Category::Reference => 0.9,
            Category::HealthAndWellness => 0.8,
            Category::NewsAndMedia => 0.8,
            Category::PersonalWebsites => 0.7,
            Category::FinanceAndBanking => 0.7,
            Category::Freeware => 0.6,
            Category::InformationTechnology => 0.55,
            Category::Games => 0.5,
            Category::Entertainment => 0.4,
            Category::Education => 0.3,
            _ => 0.0, // risky categories are never probed
        }
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn risky_share_of_top10k_matches_filter_rate() {
        let weights = Category::top10k_weights();
        let total: f64 = weights.iter().map(|(_, w)| w).sum();
        let risky: f64 = weights
            .iter()
            .filter(|(c, _)| c.is_risky())
            .map(|(_, w)| w)
            .sum();
        let share = risky / total;
        // 19.97% filtered minus the ~2.8% Citizen-Lab component.
        assert!((share - 0.168).abs() < 0.012, "risky share {share}");
    }

    #[test]
    fn risky_share_of_top1m_matches_filter_rate() {
        let weights = Category::top1m_weights();
        let total: f64 = weights.iter().map(|(_, w)| w).sum();
        let risky: f64 = weights
            .iter()
            .filter(|(c, _)| c.is_risky())
            .map(|(_, w)| w)
            .sum();
        let share = risky / total;
        // 18.7% filtered minus the Citizen-Lab component.
        assert!((share - 0.176).abs() < 0.012, "risky share {share}");
    }

    #[test]
    fn propensity_zero_only_for_risky() {
        for c in Category::ALL {
            if c.is_risky() {
                assert_eq!(c.geoblock_propensity(), 0.0, "{c}");
            } else {
                assert!(c.geoblock_propensity() > 0.0, "{c}");
            }
        }
    }

    #[test]
    fn shopping_outranks_education_in_propensity() {
        assert!(
            Category::Shopping.geoblock_propensity() > Category::Education.geoblock_propensity()
        );
    }

    #[test]
    fn weights_cover_every_safe_category() {
        use std::collections::HashSet;
        for weights in [Category::top10k_weights(), Category::top1m_weights()] {
            let cats: HashSet<_> = weights.iter().map(|(c, _)| *c).collect();
            for c in Category::ALL {
                if !c.is_risky() {
                    assert!(cats.contains(&c), "missing {c}");
                }
            }
        }
    }

    #[test]
    fn labels_are_unique() {
        use std::collections::HashSet;
        let labels: HashSet<_> = Category::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), Category::ALL.len());
    }
}
