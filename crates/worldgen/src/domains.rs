//! The synthetic Alexa-style domain population.
//!
//! Domains are generated *deterministically by rank*: [`AlexaPopulation`]
//! stores only a seed and can materialise the spec of any rank on demand —
//! which is how the simulated Internet can serve a ZGrab sweep of the whole
//! Top 1M without holding a million structs in memory. Names embed a
//! base-36 rank token so the simulator can map a requested host back to its
//! spec in O(1) (see [`AlexaPopulation::rank_of`]).
//!
//! All distribution parameters are calibrated against the paper's published
//! aggregates; see DESIGN.md §2 for the calibration rule and the comments
//! on each constant for the specific table being matched.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use geoblock_blockpages::Provider;

use crate::category::Category;
use crate::country::{cc, CountrySet};
use crate::policy::{
    draw_ambiguous_cdn_blockset, draw_challenge_set, draw_cloudflare_blockset,
    draw_cloudfront_blockset, draw_origin_blockset, CfTier, DomainPolicy, OriginBlockKind,
};
use crate::special;

/// Rank band: the Top-10K head behaves differently from the deep list in
/// both CDN adoption and geoblocking rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Band {
    /// Ranks 1..=10_000.
    Top10k,
    /// Ranks 10_001..
    Deep,
}

impl Band {
    /// Band of a rank.
    pub fn of(rank: u32) -> Band {
        if rank <= 10_000 {
            Band::Top10k
        } else {
            Band::Deep
        }
    }
}

/// Everything the simulated Internet needs to know about one domain.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DomainSpec {
    /// Fully-qualified domain name.
    pub name: String,
    /// Alexa-style rank (1-based).
    pub rank: u32,
    /// FortiGuard-style category.
    pub category: Category,
    /// CDN / access-control services fronting the domain (0–2 of them;
    /// 1,408 Top-1M domains showed two services, e.g. zales.com with both
    /// Incapsula and Akamai headers).
    pub providers: Vec<Provider>,
    /// Account tier, when fronted by Cloudflare.
    pub cf_tier: Option<CfTier>,
    /// Size in bytes of the domain's (longest) real landing page.
    pub base_page_bytes: u32,
    /// Whether the domain appears on the Citizen Lab block list.
    pub on_citizenlab: bool,
    /// Ground-truth blocking behaviour.
    pub policy: DomainPolicy,
    /// Seed for per-request randomness at the simulated edge.
    pub policy_seed: u64,
}

impl DomainSpec {
    /// Whether the domain is fronted by `provider`.
    pub fn uses(&self, provider: Provider) -> bool {
        self.providers.contains(&provider)
    }

    /// Whether the study's safety filter (risky categories + Citizen Lab
    /// list) excludes this domain from probing.
    pub fn filtered_out(&self) -> bool {
        self.category.is_risky() || self.on_citizenlab
    }
}

/// splitmix64, for deriving per-rank seeds.
pub(crate) fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Per-band CDN adoption rates, calibrated to §4.2.1 (Top 10K: 1,394
/// Cloudflare, 364 CloudFront, 108 AppEngine of 10,000) and §5.1.1 (Top 1M:
/// 109,801 Cloudflare, 10,856 CloudFront, 16,455 AppEngine, 10,727 Akamai,
/// 5,570 Incapsula).
fn provider_rate(provider: Provider, band: Band) -> f64 {
    match (provider, band) {
        (Provider::Cloudflare, Band::Top10k) => 0.1394,
        (Provider::Cloudflare, Band::Deep) => 0.1095,
        (Provider::CloudFront, Band::Top10k) => 0.0364,
        (Provider::CloudFront, Band::Deep) => 0.0106,
        (Provider::AppEngine, Band::Top10k) => 0.0108,
        (Provider::AppEngine, Band::Deep) => 0.0165,
        (Provider::Akamai, Band::Top10k) => 0.0600,
        (Provider::Akamai, Band::Deep) => 0.0102,
        (Provider::Incapsula, Band::Top10k) => 0.0080,
        (Provider::Incapsula, Band::Deep) => 0.0055,
        (Provider::Distil, Band::Top10k) => 0.0025,
        (Provider::Distil, Band::Deep) => 0.0010,
        (Provider::Baidu, Band::Top10k) => 0.0003,
        (Provider::Baidu, Band::Deep) => 0.0002,
        _ => 0.0,
    }
}

/// Probability that a domain with a primary CDN shows a second service
/// (1,408 of 152,001 CDN customers, §5.1.1).
const DUAL_SERVICE_RATE: f64 = 0.0093;

/// Per-provider probability that a customer has geoblocking enabled,
/// before the category-propensity multiplier. Calibration: §4.2.1 (Top 10K:
/// 3.1% of Cloudflare, 1.4% of CloudFront, 40.7% of AppEngine customers)
/// and §5.2.1 (Top 1M: 2.6% / 3.1% / 16.8%); §5.2.2 for Akamai/Incapsula.
fn geoblock_rate(provider: Provider, band: Band) -> f64 {
    match (provider, band) {
        // Top-10K rates are scaled up ~1.25x against the published customer
        // rates because the paper's numerators are post-safety-filter
        // domains while its denominators are raw customer counts.
        (Provider::Cloudflare, Band::Top10k) => 0.039,
        (Provider::Cloudflare, Band::Deep) => 0.026,
        (Provider::CloudFront, Band::Top10k) => 0.017,
        (Provider::CloudFront, Band::Deep) => 0.031,
        (Provider::AppEngine, Band::Top10k) => 0.470,
        (Provider::AppEngine, Band::Deep) => 0.168,
        (Provider::Akamai, _) => 0.045,
        (Provider::Incapsula, _) => 0.055,
        _ => 0.0,
    }
}

/// Residual bot-detection sensitivity per provider: fraction of customers
/// whose anti-bot layer false-positives on automated clients (the ~30%
/// Akamai ZGrab false-positive rate of §3.1 is header-dependent; these are
/// the *domain-level* sensitivity fractions).
fn bot_sensitive_rate(provider: Provider) -> f64 {
    match provider {
        Provider::Akamai => 0.23,
        Provider::Incapsula => 0.32,
        Provider::Distil => 1.0,
        _ => 0.0,
    }
}

/// Cloudflare tier distribution for customer zones.
fn draw_cf_tier<R: Rng>(rng: &mut R) -> CfTier {
    let x: f64 = rng.gen();
    if x < 0.80 {
        CfTier::Free
    } else if x < 0.92 {
        CfTier::Pro
    } else if x < 0.98 {
        CfTier::Business
    } else {
        CfTier::Enterprise
    }
}

/// TLD distribution (weights). `.com` dominance drives Table 5's TLD column.
const TLDS: &[(&str, f64)] = &[
    ("com", 52.0),
    ("net", 4.5),
    ("org", 4.0),
    ("ru", 3.5),
    ("de", 3.0),
    ("jp", 3.0),
    ("cn", 2.5),
    ("co.uk", 2.0),
    ("fr", 2.0),
    ("it", 1.5),
    ("in", 1.5),
    ("com.br", 1.5),
    ("pl", 1.0),
    ("nl", 1.0),
    ("ir", 1.0),
    ("com.au", 0.8),
    ("es", 0.8),
    ("ca", 0.8),
    ("ua", 0.8),
    ("com.tr", 0.8),
    ("info", 0.7),
    ("io", 0.5),
    ("co", 0.5),
    ("gr", 0.5),
    ("cz", 0.5),
    ("se", 0.5),
    ("co.kr", 0.4),
    ("mx", 0.4),
    ("ar", 0.4),
    ("id", 0.4),
    ("co.za", 0.4),
    ("sg", 0.3),
    ("biz", 0.3),
    ("tv", 0.3),
    ("me", 0.3),
];

const STEM_A: &[&str] = &[
    "alpha", "apex", "astro", "atlas", "aero", "blue", "bright", "cedar", "city", "clear", "cloud",
    "core", "crest", "delta", "digi", "east", "echo", "ever", "fast", "first", "flex", "fox",
    "global", "gold", "grand", "green", "halo", "hyper", "iron", "jet", "kilo", "lake", "lumen",
    "macro", "meta", "micro", "nano", "north", "nova", "omni", "open", "pario", "peak", "pico",
    "prime", "pulse", "quick", "rapid", "river", "sky", "solar", "south", "star", "stone",
    "summit", "swift", "terra", "tide", "true", "ultra", "union", "vale", "vista", "west",
];

const STEM_B: &[&str] = &[
    "base", "beam", "board", "bridge", "cart", "cast", "dash", "deal", "den", "desk", "dock",
    "drive", "edge", "field", "flow", "forge", "forum", "gate", "grid", "guide", "hub", "lab",
    "lane", "line", "link", "list", "loop", "mart", "mesh", "mill", "mint", "nest", "net", "node",
    "pad", "page", "path", "pier", "point", "port", "post", "press", "rack", "ridge", "ring",
    "room", "shelf", "shop", "site", "space", "span", "spark", "sphere", "spot", "stack", "stand",
    "store", "stream", "tower", "trade", "vault", "view", "ware", "works", "yard", "zone",
];

fn base36(mut n: u32) -> String {
    const DIGITS: &[u8] = b"0123456789abcdefghijklmnopqrstuvwxyz";
    if n == 0 {
        return "0".to_string();
    }
    let mut out = Vec::new();
    while n > 0 {
        out.push(DIGITS[(n % 36) as usize]);
        n /= 36;
    }
    out.reverse();
    String::from_utf8(out).expect("ascii")
}

fn parse_base36(s: &str) -> Option<u32> {
    if s.is_empty() {
        return None;
    }
    let mut n: u64 = 0;
    for b in s.bytes() {
        let d = match b {
            b'0'..=b'9' => (b - b'0') as u64,
            b'a'..=b'z' => (b - b'a') as u64 + 10,
            _ => return None,
        };
        n = n.checked_mul(36)?.checked_add(d)?;
        if n > u32::MAX as u64 {
            return None;
        }
    }
    Some(n as u32)
}

fn weighted<'a, T, R: Rng>(rng: &mut R, items: &'a [(T, f64)]) -> &'a T {
    let total: f64 = items.iter().map(|(_, w)| w).sum();
    let mut x = rng.gen_range(0.0..total);
    for (item, w) in items {
        x -= w;
        if x <= 0.0 {
            return item;
        }
    }
    &items[items.len() - 1].0
}

/// The deterministic Alexa-style population.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AlexaPopulation {
    seed: u64,
    size: u32,
    #[serde(skip)]
    top10k_weights: Vec<(Category, f64)>,
    #[serde(skip)]
    deep_weights: Vec<(Category, f64)>,
    #[serde(skip)]
    top10k_propensity_norm: f64,
    #[serde(skip)]
    deep_propensity_norm: f64,
}

impl AlexaPopulation {
    /// Create a population of `size` domains generated from `seed`.
    pub fn new(seed: u64, size: u32) -> AlexaPopulation {
        let top10k_weights = Category::top10k_weights();
        let deep_weights = Category::top1m_weights();
        let norm = |weights: &[(Category, f64)]| {
            let safe: Vec<_> = weights.iter().filter(|(c, _)| !c.is_risky()).collect();
            let total: f64 = safe.iter().map(|(_, w)| w).sum();
            let mean: f64 = safe
                .iter()
                .map(|(c, w)| c.geoblock_propensity() * w / total)
                .sum();
            mean
        };
        let top10k_propensity_norm = norm(&top10k_weights);
        let deep_propensity_norm = norm(&deep_weights);
        AlexaPopulation {
            seed,
            size,
            top10k_weights,
            deep_weights,
            top10k_propensity_norm,
            deep_propensity_norm,
        }
    }

    /// Number of domains.
    pub fn size(&self) -> u32 {
        self.size
    }

    /// The generation seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Materialise the spec for `rank` (1-based). Panics if out of range.
    pub fn spec(&self, rank: u32) -> DomainSpec {
        assert!(rank >= 1 && rank <= self.size, "rank {rank} out of range");
        if let Some(spec) = special::special_spec(self.seed, rank) {
            return spec;
        }
        // Hash rank *before* combining with the seed: plain `seed ^ rank`
        // makes different seeds mere permutations of one another (seed a,
        // rank r and seed b, rank r^a^b share a stream), freezing every
        // binomial count across seeds.
        let mut rng = StdRng::seed_from_u64(mix(self.seed.wrapping_add(mix(rank as u64))));
        let band = Band::of(rank);

        let weights = match band {
            Band::Top10k => &self.top10k_weights,
            Band::Deep => &self.deep_weights,
        };
        let category = *weighted(&mut rng, weights);

        let tld = *weighted(&mut rng, &tld_weights());
        let a = STEM_A[rng.gen_range(0..STEM_A.len())];
        let b = STEM_B[rng.gen_range(0..STEM_B.len())];
        let name = format!("{a}{b}-{}.{tld}", base36(rank));

        // Provider assignment: one categorical draw against the exact
        // marginal rates (a break-on-first-success chain would silently
        // deflate the later providers' shares).
        let mut providers = Vec::new();
        {
            let x: f64 = rng.gen();
            let mut acc = 0.0;
            for p in [
                Provider::Cloudflare,
                Provider::Akamai,
                Provider::CloudFront,
                Provider::AppEngine,
                Provider::Incapsula,
                Provider::Distil,
                Provider::Baidu,
            ] {
                acc += provider_rate(p, band);
                if x < acc {
                    providers.push(p);
                    break;
                }
            }
        }
        if !providers.is_empty() && rng.gen_bool(DUAL_SERVICE_RATE) {
            let secondary = [Provider::Akamai, Provider::Incapsula, Provider::CloudFront]
                [rng.gen_range(0..3usize)];
            if !providers.contains(&secondary) {
                providers.push(secondary);
            }
        }

        let cf_tier = if providers.contains(&Provider::Cloudflare) {
            Some(draw_cf_tier(&mut rng))
        } else {
            None
        };

        // Page size: log-normal-ish, clamped. Real pages dwarf the 1–3.5 KB
        // block pages, which is what makes the 30%-shorter heuristic work.
        let z: f64 = {
            let u: f64 = rng.gen_range(-1.0f64..1.0);
            let v: f64 = rng.gen_range(-1.0f64..1.0);
            u + v // triangular ≈ cheap gaussian stand-in
        };
        let base_page_bytes = (12_000.0 * (1.1 * z).exp()).clamp(1_000.0, 64_000.0) as u32;

        let on_citizenlab = rng.gen_bool(match band {
            Band::Top10k => 0.030,
            Band::Deep => 0.012,
        });

        let propensity_norm = match band {
            Band::Top10k => self.top10k_propensity_norm,
            Band::Deep => self.deep_propensity_norm,
        };
        let policy = self.draw_policy(&mut rng, category, &providers, band, propensity_norm);
        let policy_seed = mix(self.seed.wrapping_add(mix(rank as u64)) ^ 0xb10c);

        DomainSpec {
            name,
            rank,
            category,
            providers,
            cf_tier,
            base_page_bytes,
            on_citizenlab,
            policy,
            policy_seed,
        }
    }

    fn draw_policy(
        &self,
        rng: &mut StdRng,
        category: Category,
        providers: &[Provider],
        band: Band,
        propensity_norm: f64,
    ) -> DomainPolicy {
        let mut policy = DomainPolicy::default();
        let weight = category.geoblock_propensity() / propensity_norm;

        for &p in providers {
            let rate = (geoblock_rate(p, band) * weight).clamp(0.0, 0.95);
            match p {
                Provider::AppEngine
                    // Platform-level sanctions enforcement is not a customer
                    // choice; no category weighting.
                    if rng.gen_bool(geoblock_rate(p, band)) => {
                        policy.appengine_sanctions = true;
                    }
                Provider::Cloudflare => {
                    if rng.gen_bool(rate) {
                        policy.geoblocked = policy.geoblocked.union(&draw_cloudflare_blockset(rng));
                    } else {
                        // Non-blocking customers may still challenge.
                        if rng.gen_bool(0.011) {
                            policy.challenged =
                                policy.challenged.union(&draw_challenge_set(rng));
                        }
                        if rng.gen_bool(0.004) {
                            policy.js_challenge_all = true;
                        }
                    }
                }
                Provider::CloudFront
                    if rng.gen_bool(rate) => {
                        policy.geoblocked = policy.geoblocked.union(&draw_cloudfront_blockset(rng));
                    }
                Provider::Akamai | Provider::Incapsula
                    if rng.gen_bool(rate) => {
                        policy.geoblocked =
                            policy.geoblocked.union(&draw_ambiguous_cdn_blockset(rng));
                    }
                Provider::Baidu
                    if rng.gen_bool(0.3) => {
                        policy.geoblocked.insert(cc("CN"));
                    }
                _ => {}
            }
            if rng.gen_bool(bot_sensitive_rate(p)) {
                policy.bot_sensitive = true;
            }
        }

        // Origin-level stock 403 blockers (outside any CDN's control).
        if providers.is_empty() {
            if rng.gen_bool(0.0035) {
                policy.origin_blocked = draw_origin_blockset(rng);
                policy.origin_block_kind = Some(OriginBlockKind::Nginx);
            } else if rng.gen_bool(0.0008) {
                // Misconfigured vhosts: a stock nginx 403 for *everyone*,
                // everywhere — noise that caps the nginx recall in Table 2.
                policy.origin_blocked =
                    CountrySet::from_codes(crate::country::registry().iter().map(|c| c.code));
                policy.origin_block_kind = Some(OriginBlockKind::Nginx);
            } else if rng.gen_bool(0.00025) {
                policy.origin_blocked = CountrySet::from_codes(
                    draw_origin_blockset(rng).iter().take(7).collect::<Vec<_>>(),
                );
                policy.origin_block_kind = Some(if rng.gen_bool(0.5) {
                    OriginBlockKind::Varnish
                } else {
                    OriginBlockKind::Soasta
                });
            }
        }

        policy
    }

    /// Recover the rank of a generated domain name, if it belongs to this
    /// population. Special domains are matched by table lookup; generated
    /// names are matched by parsing the base-36 rank token.
    pub fn rank_of(&self, host: &str) -> Option<u32> {
        if let Some(rank) = special::special_rank(host) {
            return (rank <= self.size).then_some(rank);
        }
        let label = host.split('.').next()?;
        let token = label.rsplit_once('-')?.1;
        let rank = parse_base36(token)?;
        if rank >= 1 && rank <= self.size && self.spec(rank).name == host {
            Some(rank)
        } else {
            None
        }
    }

    /// Look up a host's spec, if it belongs to this population.
    pub fn spec_of(&self, host: &str) -> Option<DomainSpec> {
        self.rank_of(host).map(|r| self.spec(r))
    }

    /// All specs in a rank range (inclusive), skipping nothing.
    pub fn specs(&self, from: u32, to: u32) -> impl Iterator<Item = DomainSpec> + '_ {
        (from..=to.min(self.size)).map(|r| self.spec(r))
    }
}

fn tld_weights() -> Vec<(&'static str, f64)> {
    TLDS.to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pop() -> AlexaPopulation {
        AlexaPopulation::new(42, 1_000_000)
    }

    #[test]
    fn specs_are_deterministic() {
        let p = pop();
        let a = p.spec(1234);
        let b = p.spec(1234);
        assert_eq!(a.name, b.name);
        assert_eq!(a.policy.geoblocked, b.policy.geoblocked);
        assert_eq!(a.base_page_bytes, b.base_page_bytes);
    }

    #[test]
    fn names_are_unique_within_sampled_ranks() {
        use std::collections::HashSet;
        let p = pop();
        let names: HashSet<_> = (1..=5000).map(|r| p.spec(r).name).collect();
        assert_eq!(names.len(), 5000);
    }

    #[test]
    fn rank_round_trips_through_name() {
        let p = pop();
        for rank in [1u32, 9, 10_000, 10_001, 123_456, 999_999] {
            let spec = p.spec(rank);
            assert_eq!(p.rank_of(&spec.name), Some(rank), "name {}", spec.name);
        }
    }

    #[test]
    fn foreign_hosts_resolve_to_none() {
        let p = pop();
        assert_eq!(p.rank_of("www.google.com"), None);
        assert_eq!(p.rank_of("nonsense"), None);
        assert_eq!(p.rank_of("alphabase-zzzzzzzz.com"), None);
    }

    #[test]
    fn cdn_adoption_rates_match_calibration() {
        let p = pop();
        let mut cf = 0;
        let mut cloudfront = 0;
        let mut appengine = 0;
        let n = 10_000;
        for rank in 1..=n {
            let s = p.spec(rank);
            if s.uses(Provider::Cloudflare) {
                cf += 1;
            }
            if s.uses(Provider::CloudFront) {
                cloudfront += 1;
            }
            if s.uses(Provider::AppEngine) {
                appengine += 1;
            }
        }
        // §4.2.1: 1,394 / 364 / 108 (binomial noise allowed).
        assert!((1250..=1550).contains(&cf), "cloudflare {cf}");
        assert!((290..=440).contains(&cloudfront), "cloudfront {cloudfront}");
        assert!((75..=145).contains(&appengine), "appengine {appengine}");
    }

    #[test]
    fn safety_filter_rate_matches_paper() {
        let p = pop();
        let filtered = (1..=10_000).filter(|&r| p.spec(r).filtered_out()).count();
        // 10,000 → 8,003 kept means ~2,000 filtered (risky ∪ Citizen Lab).
        assert!((1750..=2300).contains(&filtered), "filtered {filtered}");
    }

    #[test]
    fn appengine_blockers_match_rate() {
        let p = pop();
        let (mut total, mut sanctioned) = (0, 0);
        for rank in 1..=10_000 {
            let s = p.spec(rank);
            if s.uses(Provider::AppEngine) {
                total += 1;
                if s.policy.appengine_sanctions {
                    sanctioned += 1;
                }
            }
        }
        let rate = sanctioned as f64 / total as f64;
        // §4.2.1: 40.7% of Top-10K AppEngine customers geoblock.
        assert!(
            (0.25..=0.58).contains(&rate),
            "rate {rate} ({sanctioned}/{total})"
        );
    }

    #[test]
    fn deep_band_has_lower_cloudfront_but_higher_appengine_share() {
        let p = pop();
        let count = |band: std::ops::RangeInclusive<u32>, prov| {
            band.clone()
                .step_by(37) // subsample for speed
                .filter(|&r| p.spec(r).uses(prov))
                .count() as f64
                / (band.count() as f64 / 37.0)
        };
        let cf_deep = count(500_000..=600_000, Provider::CloudFront);
        let cf_top = count(1..=10_000, Provider::CloudFront);
        assert!(cf_deep < cf_top, "cloudfront deep {cf_deep} top {cf_top}");
    }

    #[test]
    fn base36_round_trip() {
        for n in [0u32, 1, 35, 36, 12345, u32::MAX] {
            assert_eq!(parse_base36(&base36(n)), Some(n));
        }
        assert_eq!(parse_base36("!!"), None);
        assert_eq!(parse_base36(""), None);
    }

    #[test]
    fn page_sizes_clamped_and_plausible() {
        let p = pop();
        for rank in (1..=2000).step_by(7) {
            let s = p.spec(rank);
            assert!(
                (1_000..=64_000).contains(&s.base_page_bytes),
                "{}",
                s.base_page_bytes
            );
        }
    }
}
