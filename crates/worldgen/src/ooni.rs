//! A synthetic OONI measurement corpus (§7.1).
//!
//! OONI web-connectivity reports record, for each (domain, country) probe:
//! the local response (status, headers, body) and a *control* measurement —
//! which is often made over Tor, and Tor exits are themselves widely blocked
//! by CDN anti-abuse layers. The paper scans this corpus for its block-page
//! fingerprints and finds that 9% of Citizen Lab test-list domains served a
//! CDN geoblock page in at least one country, and that control-side 403s
//! (36,028 on Akamai/Cloudflare infrastructure) dwarf local-blocked/
//! control-ok cases (14,380) — a serious confound for censorship
//! measurement.
//!
//! The generator reproduces those *mechanisms*: local geoblocks serve real
//! fingerprint-matchable block-page bodies, state censorship fires in
//! high-censorship countries, and Tor-based controls to CDN-fronted domains
//! are blocked at CDN-typical rates.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use geoblock_blockpages::{render, PageKind, PageParams, Provider};
use geoblock_http::Url;

use crate::citizenlab::CitizenLabList;
use crate::country::{luminati_countries, CountryCode};
use crate::domains::{mix, AlexaPopulation};

/// One OONI-style web-connectivity measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OoniMeasurement {
    /// Measured domain (from the test list).
    pub domain: String,
    /// Probe country.
    pub country: CountryCode,
    /// Local response status; `None` when the request failed entirely.
    pub local_status: Option<u16>,
    /// Recorded local body (reports keep the full body; we keep it only
    /// when it is not an ordinary content page, as those are what the
    /// fingerprint scan can match).
    pub local_body: Option<String>,
    /// Control status. Saved reports include only status and headers of the
    /// control, never its body.
    pub control_status: Option<u16>,
    /// Whether the control was fetched over Tor.
    pub control_over_tor: bool,
    /// Whether the domain is served from Akamai/Cloudflare infrastructure.
    pub cdn_infra: bool,
}

impl OoniMeasurement {
    /// OONI's anomaly heuristic: local differs from control in a
    /// blocked-looking way.
    pub fn local_anomalous(&self) -> bool {
        match (self.local_status, self.control_status) {
            (None, Some(_)) => true,
            (Some(l), Some(c)) => l != c && (l == 403 || l == 451 || l >= 500),
            _ => false,
        }
    }
}

/// Configuration for corpus generation.
#[derive(Debug, Clone)]
pub struct OoniConfig {
    /// Number of measurements to generate (the real corpus holds 87M; the
    /// default repro uses 500k and reports scaled counts).
    pub measurements: usize,
    /// Probability a control runs over Tor.
    pub tor_control_rate: f64,
    /// Probability a CDN blocks a Tor-exit control request.
    pub tor_block_rate: f64,
}

impl Default for OoniConfig {
    fn default() -> Self {
        OoniConfig {
            measurements: 500_000,
            tor_control_rate: 0.75,
            tor_block_rate: 0.35,
        }
    }
}

/// Generate the corpus.
pub fn generate(
    seed: u64,
    population: &AlexaPopulation,
    list: &CitizenLabList,
    config: &OoniConfig,
) -> Vec<OoniMeasurement> {
    let mut rng = StdRng::seed_from_u64(mix(seed ^ 0x0091));
    let countries = luminati_countries();
    let mut out = Vec::with_capacity(config.measurements);

    for i in 0..config.measurements {
        let domain = &list.domains[rng.gen_range(0..list.domains.len())];
        // OONI volunteers cluster in censored and high-interest countries.
        let country = {
            let c = countries[rng.gen_range(0..countries.len())];
            let info = c.info().expect("registered");
            if info.censorship >= 2 || rng.gen_bool(0.6) {
                c
            } else {
                countries[rng.gen_range(0..countries.len())]
            }
        };
        let info = country.info().expect("registered");
        let spec = population.spec_of(domain);

        let cdn_infra = match &spec {
            Some(s) => s.uses(Provider::Cloudflare) || s.uses(Provider::Akamai),
            // Dedicated sensitive sites often shelter behind free-tier
            // Cloudflare.
            None => mix(seed ^ (i as u64) ^ 0xdd) % 100 < 25,
        };

        // --- local outcome ---
        let censored = info.censorship >= 2
            && rng.gen_bool(match info.censorship {
                3 => 0.35,
                _ => 0.18,
            });
        let geoblocked = spec
            .as_ref()
            .map(|s| {
                s.policy.geoblocked.contains(country)
                    || (s.policy.appengine_sanctions
                        && crate::country::sanctioned_all().contains(country))
                    || s.policy.origin_blocked.contains(country)
            })
            .unwrap_or(false);

        let (local_status, local_body) = if censored {
            // Censors rarely serve honest pages: resets, timeouts, or an
            // ISP block page that matches none of our CDN fingerprints.
            match rng.gen_range(0..3) {
                0 => (None, None),
                1 => (Some(403u16), Some(censor_page(country))),
                _ => (Some(302), None),
            }
        } else if geoblocked {
            let s = spec.as_ref().expect("geoblocked implies spec");
            let kind = block_kind_for(s);
            let params = PageParams::new(domain, info.name, "10.0.0.1", mix(i as u64));
            let resp = render(kind, &params).finish(Url::http(domain.as_str()));
            (
                Some(resp.status.as_u16()),
                Some(resp.body.as_text().to_string()),
            )
        } else if rng.gen_bool(0.04) {
            (None, None) // ordinary transient failure
        } else {
            (Some(200), None)
        };

        // --- control outcome ---
        let control_over_tor = rng.gen_bool(config.tor_control_rate);
        let control_status = if control_over_tor && cdn_infra && rng.gen_bool(config.tor_block_rate)
        {
            Some(403)
        } else if rng.gen_bool(0.02) {
            None
        } else {
            Some(200)
        };

        out.push(OoniMeasurement {
            domain: domain.clone(),
            country,
            local_status,
            local_body,
            control_status,
            control_over_tor,
            cdn_infra,
        });
    }
    out
}

/// Which block page a geoblocking domain serves in the corpus.
fn block_kind_for(spec: &crate::domains::DomainSpec) -> PageKind {
    if spec.policy.appengine_sanctions {
        PageKind::AppEngine
    } else if let Some(kind) = spec.policy.origin_block_kind {
        match kind {
            crate::policy::OriginBlockKind::Nginx => PageKind::Nginx403,
            crate::policy::OriginBlockKind::Varnish => PageKind::Varnish403,
            crate::policy::OriginBlockKind::Soasta => PageKind::Soasta,
            crate::policy::OriginBlockKind::Airbnb => PageKind::Airbnb,
        }
    } else if spec.uses(Provider::Cloudflare) {
        PageKind::Cloudflare
    } else if spec.uses(Provider::CloudFront) {
        PageKind::CloudFront
    } else if spec.uses(Provider::Akamai) {
        PageKind::Akamai
    } else if spec.uses(Provider::Incapsula) {
        PageKind::Incapsula
    } else if spec.uses(Provider::Baidu) {
        PageKind::Baidu
    } else {
        PageKind::Nginx403
    }
}

/// A national ISP block page — deliberately unlike any CDN fingerprint.
fn censor_page(country: CountryCode) -> String {
    format!(
        "<html><head><title>Access Restricted</title></head><body>\
         <h1>This website is not accessible</h1>\
         <p>Access to this website has been restricted pursuant to national \
         regulations. Code: {country}-NET-451</p></body></html>"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoblock_blockpages::FingerprintSet;

    fn small_corpus() -> (AlexaPopulation, CitizenLabList, Vec<OoniMeasurement>) {
        let pop = AlexaPopulation::new(42, 100_000);
        let list = CitizenLabList::generate(42, &pop, 8_000);
        let cfg = OoniConfig {
            measurements: 30_000,
            ..OoniConfig::default()
        };
        let corpus = generate(42, &pop, &list, &cfg);
        (pop, list, corpus)
    }

    #[test]
    fn corpus_has_fingerprint_matches_across_many_countries() {
        let (_, _, corpus) = small_corpus();
        let set = FingerprintSet::paper();
        let mut countries = std::collections::HashSet::new();
        let mut matches = 0;
        for m in &corpus {
            if let Some(body) = &m.local_body {
                if set.classify_text(body).is_some() {
                    matches += 1;
                    countries.insert(m.country);
                }
            }
        }
        assert!(matches > 20, "matches {matches}");
        assert!(countries.len() > 10, "countries {}", countries.len());
    }

    #[test]
    fn censor_pages_match_no_cdn_fingerprint() {
        let set = FingerprintSet::paper();
        assert!(set
            .classify_text(&censor_page(crate::country::cc("IR")))
            .is_none());
    }

    #[test]
    fn control_403s_concentrate_on_cdn_infra() {
        let (_, _, corpus) = small_corpus();
        let c403_cdn = corpus
            .iter()
            .filter(|m| m.control_status == Some(403) && m.cdn_infra)
            .count();
        let c403_noncdn = corpus
            .iter()
            .filter(|m| m.control_status == Some(403) && !m.cdn_infra)
            .count();
        assert!(c403_cdn > 100, "cdn {c403_cdn}");
        assert_eq!(c403_noncdn, 0, "non-cdn controls are never Tor-blocked");
    }

    #[test]
    fn control_403_exceeds_local_anomaly_count() {
        // The §7.1 punchline: control-side blocking outweighs local
        // anomalies on CDN infrastructure.
        let (_, _, corpus) = small_corpus();
        let control_403 = corpus
            .iter()
            .filter(|m| m.cdn_infra && m.control_status == Some(403))
            .count();
        let local_blocked_control_ok = corpus
            .iter()
            .filter(|m| m.cdn_infra && m.local_anomalous() && m.control_status == Some(200))
            .count();
        assert!(
            control_403 > local_blocked_control_ok,
            "control {control_403} vs local {local_blocked_control_ok}"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let pop = AlexaPopulation::new(1, 50_000);
        let list = CitizenLabList::generate(1, &pop, 4_000);
        let cfg = OoniConfig {
            measurements: 1_000,
            ..OoniConfig::default()
        };
        let a = generate(1, &pop, &list, &cfg);
        let b = generate(1, &pop, &list, &cfg);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.domain, y.domain);
            assert_eq!(x.local_status, y.local_status);
        }
    }
}
