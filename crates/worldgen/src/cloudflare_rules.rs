//! The Cloudflare firewall-rules snapshot (§6 ground truth).
//!
//! Cloudflare provided the authors a July 2018 snapshot of all active
//! country-scoped Firewall Access Rules: action (block / challenge /
//! js_challenge / whitelist), target country, zone tier, and activation
//! date — captured during the April–August 2018 regression in which the
//! Enterprise-only country-*block* action was accidentally available to all
//! tiers. This module generates an equivalent snapshot whose per-tier,
//! per-country rates match Table 9 and whose activation-date distribution
//! reproduces Figure 5.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::country::{cc, CountryCode};
use crate::domains::mix;
use crate::policy::CfTier;

/// Rule actions available in Firewall Access Rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RuleAction {
    Block,
    Challenge,
    JsChallenge,
    Whitelist,
}

/// One country-scoped rule on one zone.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CountryRule {
    /// Synthetic zone identifier.
    pub zone_id: u64,
    /// The zone's account tier.
    pub tier: CfTier,
    /// Rule action.
    pub action: RuleAction,
    /// Target country.
    pub country: CountryCode,
    /// Activation date, in days since 2015-01-01.
    pub activated_day: u32,
}

/// Days since 2015-01-01 for a civil date (2015–2019 range, Gregorian).
pub fn day_number(year: u32, month: u32, day: u32) -> u32 {
    const CUM: [u32; 12] = [0, 31, 59, 90, 120, 151, 181, 212, 243, 273, 304, 334];
    let mut days = 0;
    for y in 2015..year {
        days += if y % 4 == 0 { 366 } else { 365 };
    }
    days += CUM[(month - 1) as usize];
    if month > 2 && year.is_multiple_of(4) {
        days += 1;
    }
    days + (day - 1)
}

/// Civil date for a day number (inverse of [`day_number`]).
pub fn date_of(mut days: u32) -> (u32, u32, u32) {
    let mut year = 2015;
    loop {
        let len = if year % 4 == 0 { 366 } else { 365 };
        if days < len {
            break;
        }
        days -= len;
        year += 1;
    }
    let leap = year % 4 == 0;
    let month_lens = [
        31,
        if leap { 29 } else { 28 },
        31,
        30,
        31,
        30,
        31,
        31,
        30,
        31,
        30,
        31,
    ];
    let mut month = 1;
    for len in month_lens {
        if days < len {
            break;
        }
        days -= len;
        month += 1;
    }
    (year, month, days + 1)
}

/// Per-tier rates from Table 9: fraction of zones with any country-scoped
/// geoblocking, and the per-country rates for the 16 listed countries.
#[derive(Debug, Clone)]
pub struct TierProfile {
    /// Account tier.
    pub tier: CfTier,
    /// Number of zones at this tier (scaled).
    pub zones: u64,
    /// "Baseline" of Table 9: fraction of zones with geoblocking enabled
    /// against any country.
    pub baseline: f64,
    /// Per-country blocking rates (fraction of all zones at this tier).
    pub country_rates: Vec<(CountryCode, f64)>,
}

/// Table 9's published per-country rates (percent of zones).
fn table9_rates(tier: CfTier) -> Vec<(CountryCode, f64)> {
    let rows: [(&str, [f64; 4]); 17] = [
        // (country, [enterprise, business, pro, free]) in percent
        ("RU", [4.90, 1.14, 0.44, 0.19]),
        ("CN", [3.11, 1.16, 0.46, 0.20]),
        ("KP", [16.50, 0.38, 0.17, 0.10]),
        ("IR", [15.57, 0.39, 0.13, 0.09]),
        ("UA", [3.89, 0.71, 0.38, 0.15]),
        ("RO", [3.63, 0.49, 0.24, 0.12]),
        ("IN", [4.18, 0.48, 0.23, 0.11]),
        ("BR", [3.87, 0.43, 0.16, 0.11]),
        ("VN", [3.08, 0.33, 0.16, 0.11]),
        ("CZ", [3.66, 0.40, 0.15, 0.09]),
        ("ID", [2.24, 0.39, 0.12, 0.10]),
        ("IQ", [3.99, 0.32, 0.09, 0.08]),
        ("HR", [3.44, 0.24, 0.13, 0.08]),
        ("SY", [13.74, 0.17, 0.06, 0.02]),
        ("EE", [3.28, 0.32, 0.14, 0.08]),
        ("SD", [13.57, 0.12, 0.04, 0.02]),
        // Cuba is not a printed Table 9 row, but Figure 5 shows its rules
        // accumulating alongside the other sanctioned countries.
        ("CU", [13.40, 0.12, 0.04, 0.02]),
    ];
    let idx = match tier {
        CfTier::Enterprise => 0,
        CfTier::Business => 1,
        CfTier::Pro => 2,
        CfTier::Free => 3,
    };
    rows.iter()
        .map(|(code, rates)| (cc(code), rates[idx] / 100.0))
        .collect()
}

/// Zone populations chosen so the all-tier baseline lands on Table 9's
/// 1.93% (Enterprise zones are rare; Free zones dominate).
fn tier_zone_counts(scale: f64) -> Vec<(CfTier, u64)> {
    [
        (CfTier::Enterprise, 4_000.0),
        (CfTier::Business, 28_000.0),
        (CfTier::Pro, 60_000.0),
        (CfTier::Free, 950_000.0),
    ]
    .into_iter()
    .map(|(t, n)| (t, (n * scale).max(50.0) as u64))
    .collect()
}

fn tier_baseline(tier: CfTier) -> f64 {
    match tier {
        CfTier::Enterprise => 0.3707,
        CfTier::Business => 0.0269,
        CfTier::Pro => 0.0256,
        CfTier::Free => 0.0172,
    }
}

/// The generated snapshot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RulesSnapshot {
    /// All country-scoped rules active at snapshot time (July 2018).
    pub rules: Vec<CountryRule>,
    /// Zones per tier (including zones with no rules).
    pub zones_per_tier: Vec<(CfTier, u64)>,
}

impl RulesSnapshot {
    /// Generate a snapshot at `scale` (1.0 ≈ a large CDN's zone base;
    /// tests use much smaller scales).
    pub fn generate(seed: u64, scale: f64) -> RulesSnapshot {
        let mut rng = StdRng::seed_from_u64(mix(seed ^ 0xcf66));
        let mut rules = Vec::new();
        let zones_per_tier = tier_zone_counts(scale);
        let snapshot_day = day_number(2018, 7, 15);
        let regression_start = day_number(2018, 4, 9);

        let mut zone_id = 1u64;
        for &(tier, zones) in &zones_per_tier {
            let baseline = tier_baseline(tier);
            let ruled = (zones as f64 * baseline).round() as u64;
            let rates = table9_rates(tier);
            // Conditional inclusion probability for a ruled zone.
            let conditional: Vec<(CountryCode, f64)> = rates
                .iter()
                .map(|(c, r)| (*c, (r / baseline).min(1.0)))
                .collect();
            for _ in 0..ruled {
                let id = zone_id;
                zone_id += 1;
                let mut any = false;
                // Zones that couple to the OFAC list treat the sanctioned
                // five "similarly" (§6 / Figure 5): one bundle draw.
                let sanctions_bundle = matches!(tier, CfTier::Enterprise)
                    && rng.gen_bool(
                        conditional
                            .iter()
                            .find(|(c, _)| *c == cc("SD"))
                            .map(|(_, p)| *p)
                            .unwrap_or(0.0),
                    );
                let activated_day = if tier == CfTier::Enterprise {
                    // Long accumulation since 2016, denser recently (Fig 5).
                    let span = (snapshot_day - day_number(2016, 1, 1)) as f64;
                    let u: f64 = rng.gen::<f64>().powf(0.6);
                    day_number(2016, 1, 1) + (u * span) as u32
                } else {
                    // Only possible during the regression window.
                    rng.gen_range(regression_start..snapshot_day)
                };
                for (country, p) in &conditional {
                    let in_bundle = sanctions_bundle
                        && matches!(country.as_str(), "IR" | "SY" | "SD" | "CU" | "KP");
                    if in_bundle || rng.gen_bool(*p) {
                        rules.push(CountryRule {
                            zone_id: id,
                            tier,
                            action: RuleAction::Block,
                            country: *country,
                            activated_day,
                        });
                        any = true;
                    }
                    // Challenge actions were never tier-restricted; lower
                    // tiers use them heavily (the snapshot contains all
                    // four actions, §6). They do not count toward the
                    // tier's *blocking* baseline.
                    let challenge_boost = match tier {
                        CfTier::Enterprise => 0.3,
                        _ => 1.6,
                    };
                    if rng.gen_bool((p * challenge_boost).min(0.9)) {
                        rules.push(CountryRule {
                            zone_id: id,
                            tier,
                            action: if rng.gen_bool(0.6) {
                                RuleAction::Challenge
                            } else {
                                RuleAction::JsChallenge
                            },
                            country: *country,
                            // Challenges predate the regression window.
                            activated_day: activated_day
                                .min(rng.gen_range(day_number(2016, 1, 1)..snapshot_day)),
                        });
                    }
                }
                if !any {
                    // A ruled zone must block something; pick the modal pair.
                    rules.push(CountryRule {
                        zone_id: id,
                        tier,
                        action: RuleAction::Block,
                        country: if tier == CfTier::Enterprise {
                            cc("KP")
                        } else {
                            cc("CN")
                        },
                        activated_day,
                    });
                }
            }
            zone_id += zones - ruled; // account for unruled zones
        }

        RulesSnapshot {
            rules,
            zones_per_tier,
        }
    }

    /// Fraction of zones at `tier` blocking `country`.
    pub fn rate(&self, tier: CfTier, country: CountryCode) -> f64 {
        let zones = self
            .zones_per_tier
            .iter()
            .find(|(t, _)| *t == tier)
            .map(|(_, n)| *n)
            .unwrap_or(0);
        if zones == 0 {
            return 0.0;
        }
        let mut zone_ids: Vec<u64> = self
            .rules
            .iter()
            .filter(|r| r.tier == tier && r.country == country && r.action == RuleAction::Block)
            .map(|r| r.zone_id)
            .collect();
        zone_ids.sort_unstable();
        zone_ids.dedup();
        zone_ids.len() as f64 / zones as f64
    }

    /// Fraction of zones at `tier` with any block rule (Table 9 baseline).
    pub fn baseline_rate(&self, tier: CfTier) -> f64 {
        let zones = self
            .zones_per_tier
            .iter()
            .find(|(t, _)| *t == tier)
            .map(|(_, n)| *n)
            .unwrap_or(0);
        if zones == 0 {
            return 0.0;
        }
        let mut zone_ids: Vec<u64> = self
            .rules
            .iter()
            .filter(|r| r.tier == tier && r.action == RuleAction::Block)
            .map(|r| r.zone_id)
            .collect();
        zone_ids.sort_unstable();
        zone_ids.dedup();
        zone_ids.len() as f64 / zones as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn day_number_round_trips() {
        for (y, m, d) in [
            (2015, 1, 1),
            (2016, 2, 29),
            (2018, 4, 9),
            (2018, 7, 15),
            (2018, 12, 31),
        ] {
            let n = day_number(y, m, d);
            assert_eq!(date_of(n), (y, m, d), "date {y}-{m}-{d} (day {n})");
        }
    }

    #[test]
    fn regression_window_ordering() {
        assert!(day_number(2018, 4, 9) < day_number(2018, 7, 15));
        assert!(day_number(2016, 1, 1) < day_number(2018, 4, 9));
    }

    #[test]
    fn enterprise_baseline_matches_table9() {
        let snap = RulesSnapshot::generate(11, 0.05);
        let ent = snap.baseline_rate(CfTier::Enterprise);
        assert!((0.30..=0.45).contains(&ent), "enterprise baseline {ent}");
        let free = snap.baseline_rate(CfTier::Free);
        assert!((0.012..=0.024).contains(&free), "free baseline {free}");
    }

    #[test]
    fn north_korea_tops_enterprise_blocking() {
        let snap = RulesSnapshot::generate(11, 0.05);
        let kp = snap.rate(CfTier::Enterprise, cc("KP"));
        let ru = snap.rate(CfTier::Enterprise, cc("RU"));
        assert!(kp > ru * 2.0, "KP {kp} vs RU {ru}");
    }

    #[test]
    fn free_tier_blocks_china_russia_over_sanctions() {
        // §6: free-tier customers block China and Russia at higher rates
        // than the sanctioned countries.
        let snap = RulesSnapshot::generate(11, 0.1);
        let cn = snap.rate(CfTier::Free, cc("CN"));
        let sy = snap.rate(CfTier::Free, cc("SY"));
        assert!(cn > sy * 2.0, "CN {cn} vs SY {sy}");
    }

    #[test]
    fn non_enterprise_rules_confined_to_regression_window() {
        // Country *blocking* was Enterprise-only until the April 2018
        // regression; challenge actions were always available.
        let snap = RulesSnapshot::generate(3, 0.02);
        let start = day_number(2018, 4, 9);
        for r in &snap.rules {
            if r.tier != CfTier::Enterprise && r.action == RuleAction::Block {
                assert!(
                    r.activated_day >= start,
                    "non-enterprise block rule activated on day {} before the regression",
                    r.activated_day
                );
            }
        }
        // The snapshot carries challenge actions too (§6 lists all four).
        assert!(snap.rules.iter().any(|r| r.action == RuleAction::Challenge));
        assert!(snap
            .rules
            .iter()
            .any(|r| r.action == RuleAction::JsChallenge));
    }

    #[test]
    fn enterprise_rules_accumulate_over_years() {
        let snap = RulesSnapshot::generate(5, 0.05);
        let days: Vec<u32> = snap
            .rules
            .iter()
            .filter(|r| r.tier == CfTier::Enterprise)
            .map(|r| r.activated_day)
            .collect();
        let min = *days.iter().min().unwrap();
        let max = *days.iter().max().unwrap();
        assert!(min < day_number(2016, 7, 1), "earliest {min}");
        assert!(max > day_number(2018, 1, 1), "latest {max}");
    }
}
