//! Per-domain blocking policies.
//!
//! A [`DomainPolicy`] is the *ground truth* the simulated CDN edges enforce.
//! The measurement pipeline never reads it — it must rediscover blocking
//! from responses, exactly as the paper does. The policy generator in
//! [`crate::domains`] draws these from distributions calibrated against the
//! paper's published aggregates.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::country::{cc, registry, sanctioned_all, CountrySet};

/// Cloudflare account tiers (§6). Country *blocking* is an Enterprise
/// feature; lower tiers can only challenge — except during the April–August
/// 2018 regression, during which all tiers could block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CfTier {
    Free,
    Pro,
    Business,
    Enterprise,
}

impl CfTier {
    /// All tiers, cheapest first.
    pub const ALL: [CfTier; 4] = [
        CfTier::Free,
        CfTier::Pro,
        CfTier::Business,
        CfTier::Enterprise,
    ];

    /// Table 9 column label.
    pub fn label(&self) -> &'static str {
        match self {
            CfTier::Free => "Free",
            CfTier::Pro => "Pro",
            CfTier::Business => "Business",
            CfTier::Enterprise => "Enterprise",
        }
    }
}

/// Which stock page an origin-level block serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OriginBlockKind {
    /// Stock nginx 403.
    Nginx,
    /// Stock Varnish 403 ("Guru Meditation").
    Varnish,
    /// SOASTA edge denial.
    Soasta,
    /// Airbnb's custom sanctions page.
    Airbnb,
}

/// Ground-truth blocking behaviour for one domain.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DomainPolicy {
    /// Countries explicitly geoblocked through the domain's CDN.
    pub geoblocked: CountrySet,
    /// Countries served a CAPTCHA challenge instead of content.
    pub challenged: CountrySet,
    /// Cloudflare "I'm Under Attack" JavaScript challenge shown to all
    /// visitors (probabilistically — IUAM episodes come and go).
    pub js_challenge_all: bool,
    /// Countries the *origin* blocks with a stock error page, bypassing the
    /// CDN (or with no CDN at all).
    pub origin_blocked: CountrySet,
    /// Which stock page the origin block serves.
    pub origin_block_kind: Option<OriginBlockKind>,
    /// Whether the domain's bot-detection layer (Akamai / Incapsula /
    /// Distil) is aggressive enough to false-positive on automated clients.
    pub bot_sensitive: bool,
    /// Google AppEngine sanctions enforcement: the platform itself blocks
    /// Iran, Syria, Sudan, Cuba, North Korea, and Crimea.
    pub appengine_sanctions: bool,
    /// The `makro.co.za` phenomenon (§4.2): geoblocking active during the
    /// baseline pass but dropped before the confirmation resample.
    pub policy_flip: bool,
    /// The `geniusdisplay.com` phenomenon (§4.2.2): blocking applies only
    /// to the Crimea region, not all of Ukraine.
    pub crimea_only: bool,
}

impl DomainPolicy {
    /// Whether any explicit geoblocking is configured.
    pub fn geoblocks(&self) -> bool {
        !self.geoblocked.is_empty() || self.appengine_sanctions
    }
}

/// Draw the blocked-country set for a Cloudflare-style geoblocker: roughly
/// half couple to the OFAC sanctions list wholesale, high-abuse countries
/// are blocked in proportion to their reputation, and a thin uniform tail
/// covers everyone else (the "Other" mass in Tables 6/7).
pub fn draw_cloudflare_blockset<R: Rng>(rng: &mut R) -> CountrySet {
    let mut set = CountrySet::new();
    if rng.gen_bool(0.47) {
        set = set.union(&sanctioned_all());
    }
    for info in registry() {
        if info.sanctioned {
            continue;
        }
        let p_abuse = if info.abuse >= 0.30 {
            info.abuse * 0.35
        } else {
            0.0
        };
        let p = (p_abuse + 0.012).min(0.95);
        if rng.gen_bool(p) {
            set.insert(info.code);
        }
    }
    if set.is_empty() {
        // A geoblocker must block something; default to the modal rule.
        set = sanctioned_all();
    }
    set
}

/// Draw the blocked set for a CloudFront-style geoblocker: a mixture of
/// sanctions-compliance blockers and market-segmentation blockers that deny
/// a large fraction of the world (the mean of ~33 countries per blocking
/// domain in Table 6 comes from the latter).
pub fn draw_cloudfront_blockset<R: Rng>(rng: &mut R) -> CountrySet {
    let mut set = CountrySet::new();
    let style: f64 = rng.gen();
    if style < 0.10 {
        // Allowlist operators: serve a handful of home markets, block the
        // rest of the world. These are the blockers whose block page *is*
        // the representative page in every top-blocking country — the
        // 37.9% CloudFront recall of Table 2.
        let frac: f64 = rng.gen_range(0.90..0.98);
        for info in registry() {
            if rng.gen_bool(frac) {
                set.insert(info.code);
            }
        }
    } else if style < 0.45 {
        // Market segmentation: block a broad swathe of the world.
        let frac: f64 = rng.gen_range(0.10..0.40);
        for info in registry() {
            let bias = if info.sanctioned { 0.4 } else { 0.0 };
            if rng.gen_bool((frac + bias).min(0.98)) {
                set.insert(info.code);
            }
        }
    } else {
        // Sanctions compliance plus a small tail.
        if rng.gen_bool(0.85) {
            set = set.union(&sanctioned_all());
        }
        for info in registry() {
            if !info.sanctioned && rng.gen_bool(0.02) {
                set.insert(info.code);
            }
        }
    }
    if set.is_empty() {
        set = sanctioned_all();
    }
    set
}

/// Draw the blocked set for an Akamai/Incapsula-style geoblocker. Both
/// CDNs' confirmed geoblockers most commonly block China, Russia, Cuba,
/// Iran, Syria, and Sudan (§5.2.2), with ~12–14 countries per domain.
pub fn draw_ambiguous_cdn_blockset<R: Rng>(rng: &mut R) -> CountrySet {
    let mut set = CountrySet::new();
    for code in ["IR", "SY", "SD", "CU", "KP"] {
        if rng.gen_bool(0.6) {
            set.insert(cc(code));
        }
    }
    for info in registry() {
        if info.sanctioned {
            continue;
        }
        let p_abuse = if info.abuse >= 0.45 {
            info.abuse * 0.5
        } else {
            0.0
        };
        if rng.gen_bool((p_abuse + 0.035).min(0.95)) {
            set.insert(info.code);
        }
    }
    if set.is_empty() {
        set.insert(cc("CN"));
        set.insert(cc("RU"));
    }
    set
}

/// The AppEngine platform block list: every OFAC-sanctioned country.
/// (Crimea is handled regionally by the edge, not through this set.)
pub fn appengine_blockset() -> CountrySet {
    sanctioned_all()
}

/// Draw the challenged-country set for a Cloudflare customer with
/// country-scoped challenge rules: predominantly the high-abuse countries
/// that Table 9 shows free-tier customers target (China, Russia, Ukraine…).
pub fn draw_challenge_set<R: Rng>(rng: &mut R) -> CountrySet {
    let mut set = CountrySet::new();
    for info in registry() {
        if info.abuse >= 0.40 && rng.gen_bool(info.abuse * 0.8) {
            set.insert(info.code);
        }
    }
    if set.is_empty() {
        set.insert(cc("CN"));
    }
    set
}

/// Draw the blocked set for an origin-level (nginx/Varnish) blocker: IP
/// blocklists aimed at abusive networks, ~15–25% of the world.
pub fn draw_origin_blockset<R: Rng>(rng: &mut R) -> CountrySet {
    let mut set = CountrySet::new();
    // A fifth of origin blocklists are scorched-earth ("allow my country
    // and a few neighbours"); the rest target abusive networks.
    let frac: f64 = if rng.gen_bool(0.2) {
        rng.gen_range(0.60..0.90)
    } else {
        rng.gen_range(0.08..0.30)
    };
    for info in registry() {
        let p = if info.abuse >= 0.40 {
            frac.max(0.7)
        } else {
            frac
        };
        if rng.gen_bool(p) {
            set.insert(info.code);
        }
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mean_blockset_size(draw: impl Fn(&mut StdRng) -> CountrySet, n: usize) -> f64 {
        let mut rng = StdRng::seed_from_u64(7);
        (0..n).map(|_| draw(&mut rng).len() as f64).sum::<f64>() / n as f64
    }

    #[test]
    fn cloudflare_blocksets_average_near_paper_rate() {
        // Table 6: 248 instances / 43 domains ≈ 5.8 countries per blocker
        // (of countries with vantage points; the draw includes KP).
        let mean = mean_blockset_size(draw_cloudflare_blockset, 2000);
        assert!((4.0..9.0).contains(&mean), "mean {mean}");
    }

    #[test]
    fn cloudfront_blocksets_are_much_broader() {
        // Table 6: 167 / 5 ≈ 33 countries per blocker (the allowlist tail
        // raises the mean above the market-segmentation mode).
        let mean = mean_blockset_size(draw_cloudfront_blockset, 2000);
        assert!((15.0..55.0).contains(&mean), "mean {mean}");
        let cf = mean_blockset_size(draw_cloudflare_blockset, 2000);
        assert!(
            mean > 2.0 * cf,
            "CloudFront ({mean}) should be far broader than Cloudflare ({cf})"
        );
    }

    #[test]
    fn ambiguous_blocksets_fall_in_between() {
        // §5.2.2: 201 / 14 ≈ 14 countries per Akamai blocker.
        let mean = mean_blockset_size(draw_ambiguous_cdn_blockset, 2000);
        assert!((8.0..20.0).contains(&mean), "mean {mean}");
    }

    #[test]
    fn blocksets_are_never_empty() {
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..500 {
            assert!(!draw_cloudflare_blockset(&mut rng).is_empty());
            assert!(!draw_cloudfront_blockset(&mut rng).is_empty());
            assert!(!draw_ambiguous_cdn_blockset(&mut rng).is_empty());
            assert!(!draw_challenge_set(&mut rng).is_empty());
        }
    }

    #[test]
    fn sanctioned_countries_dominate_cloudflare_blocking() {
        // Count how often each country appears across many drawn blocklists;
        // the sanctioned four must out-rank everything except perhaps the
        // worst abuse scores — the Table 5/6 country ordering.
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..3000 {
            for code in draw_cloudflare_blockset(&mut rng).iter() {
                *counts.entry(code).or_insert(0u32) += 1;
            }
        }
        let iran = counts[&cc("IR")];
        let china = counts[&cc("CN")];
        let france = *counts.get(&cc("FR")).unwrap_or(&0);
        assert!(iran > france * 5, "IR {iran} vs FR {france}");
        assert!(china > france * 3, "CN {china} vs FR {france}");
    }

    #[test]
    fn challenge_sets_target_abuse_not_sanctions() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut cn = 0;
        let mut ir = 0;
        for _ in 0..2000 {
            let s = draw_challenge_set(&mut rng);
            if s.contains(cc("CN")) {
                cn += 1;
            }
            if s.contains(cc("IR")) {
                ir += 1;
            }
        }
        assert!(cn > ir * 2, "CN {cn} vs IR {ir}");
    }

    #[test]
    fn appengine_blockset_is_the_sanctions_list() {
        let s = appengine_blockset();
        assert_eq!(s.len(), 5);
        assert!(s.contains(cc("KP")));
    }
}
