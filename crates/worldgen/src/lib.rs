//! Deterministic synthetic-world generation for the geoblocking study.
//!
//! The paper measures the real Internet from real residential vantage
//! points; this crate generates the closest synthetic equivalent:
//!
//! * [`country`] — 195 countries with the attributes that drive blocking
//!   (sanctions, censorship, abuse reputation, vantage availability);
//! * [`category`] — the FortiGuard-style taxonomy and the safety filter;
//! * [`domains`] — an Alexa-style population of up to a million domains,
//!   generated deterministically by rank, with CDN assignments and
//!   ground-truth geoblocking policies calibrated to the paper's published
//!   aggregates (see DESIGN.md);
//! * [`policy`] — the per-provider block-set distributions;
//! * [`special`] — the named domains behind the paper's anecdotes
//!   (makro.co.za, geniusdisplay.com, fasttech.com, zales.com, Airbnb…);
//! * [`citizenlab`] — a synthetic Citizen Lab test list;
//! * [`ooni`] — a synthetic OONI measurement corpus (§7.1);
//! * [`cloudflare_rules`] — the §6 firewall-rules ground-truth snapshot.
//!
//! **The measurement pipeline never reads ground truth.** Policies exist so
//! the simulated CDN edges can enforce them; the pipeline must rediscover
//! blocking from responses alone, exactly as the paper does.

pub mod category;
pub mod citizenlab;
pub mod cloudflare_rules;
pub mod country;
pub mod domains;
pub mod ooni;
pub mod policy;
pub mod special;
pub mod world;

pub use category::Category;
pub use citizenlab::CitizenLabList;
pub use cloudflare_rules::{CountryRule, RuleAction, RulesSnapshot};
pub use country::{cc, CountryCode, CountryInfo, CountrySet};
pub use domains::{AlexaPopulation, Band, DomainSpec};
pub use ooni::{OoniConfig, OoniMeasurement};
pub use policy::{CfTier, DomainPolicy, OriginBlockKind};
pub use world::{World, WorldConfig};
