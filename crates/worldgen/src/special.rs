//! Named special-case domains observed in the paper.
//!
//! A handful of real domains anchor specific findings: `makro.co.za`
//! (a policy change mid-study), `geniusdisplay.com` (Crimea-granular
//! blocking), `fasttech.com` (the lone Baidu block page, seen in China),
//! `pbskids.com` (the Child Education geoblocker), `zales.com` (dual
//! Incapsula + Akamai headers), and the Airbnb ccTLD family (explicit
//! Iran/Syria blocking). Placing them at fixed ranks keeps the generated
//! world recognisable and lets tests assert the paper's anecdotes.

use crate::category::Category;
use crate::country::{cc, CountrySet};
use crate::domains::{mix, DomainSpec};
use crate::policy::{CfTier, DomainPolicy, OriginBlockKind};
use geoblock_blockpages::Provider;

/// The Airbnb ccTLD family present in the Top 10K (8 domains: 49 Airbnb
/// block-page samples in Table 2 ≈ 8 domains × 2 measurable countries × 3
/// samples).
const AIRBNB_TLDS: [&str; 8] = ["com", "fr", "de", "it", "es", "ca", "co.uk", "com.au"];

struct SpecialDef {
    rank: u32,
    name: &'static str,
    category: Category,
    providers: &'static [Provider],
    cf_tier: Option<CfTier>,
    base_page_bytes: u32,
}

const SPECIALS: &[SpecialDef] = &[
    SpecialDef {
        rank: 4_321,
        name: "makro.co.za",
        category: Category::Shopping,
        providers: &[Provider::Cloudflare],
        cf_tier: Some(CfTier::Enterprise),
        base_page_bytes: 22_000,
    },
    SpecialDef {
        rank: 7_777,
        name: "geniusdisplay.com",
        category: Category::Advertising,
        providers: &[Provider::AppEngine],
        cf_tier: None,
        base_page_bytes: 9_000,
    },
    SpecialDef {
        rank: 3_456,
        name: "fasttech.com",
        category: Category::Shopping,
        providers: &[Provider::Baidu],
        cf_tier: None,
        base_page_bytes: 34_000,
    },
    SpecialDef {
        rank: 5_678,
        name: "pbskids.com",
        category: Category::ChildEducation,
        providers: &[Provider::Cloudflare],
        cf_tier: Some(CfTier::Enterprise),
        base_page_bytes: 41_000,
    },
    SpecialDef {
        rank: 8_900,
        name: "zales.com",
        category: Category::Shopping,
        providers: &[Provider::Incapsula, Provider::Akamai],
        cf_tier: None,
        base_page_bytes: 28_000,
    },
];

/// First rank used by the Airbnb ccTLD family.
const AIRBNB_BASE_RANK: u32 = 240;

fn airbnb_spec(seed: u64, rank: u32) -> DomainSpec {
    let idx = (rank - AIRBNB_BASE_RANK) as usize;
    let tld = AIRBNB_TLDS[idx];
    let mut policy = DomainPolicy {
        origin_block_kind: Some(OriginBlockKind::Airbnb),
        ..DomainPolicy::default()
    };
    // The page says Crimea, Iran, Syria, and North Korea; only Iran and
    // Syria are measurable country-wide, and the edge handles Crimea.
    policy.origin_blocked = CountrySet::from_codes([cc("IR"), cc("SY"), cc("KP")]);
    policy.crimea_only = false;
    DomainSpec {
        name: format!("airbnb.{tld}"),
        rank,
        category: Category::Travel,
        providers: Vec::new(),
        cf_tier: None,
        base_page_bytes: 52_000,
        on_citizenlab: false,
        policy,
        policy_seed: mix(seed ^ rank as u64 ^ 0xa12b),
    }
}

/// If `rank` is a special domain, materialise it.
pub fn special_spec(seed: u64, rank: u32) -> Option<DomainSpec> {
    if (AIRBNB_BASE_RANK..AIRBNB_BASE_RANK + AIRBNB_TLDS.len() as u32).contains(&rank) {
        return Some(airbnb_spec(seed, rank));
    }
    let def = SPECIALS.iter().find(|d| d.rank == rank)?;
    let mut policy = DomainPolicy::default();
    match def.name {
        "makro.co.za" => {
            // Blocked 33 countries during the baseline pass, none by the
            // confirmation resample days later (§4.2).
            let mut set = CountrySet::new();
            for (i, info) in crate::country::registry().iter().enumerate() {
                if info.luminati && !info.sanctioned && i % 5 == 0 {
                    set.insert(info.code);
                }
                if set.len() == 33 {
                    break;
                }
            }
            policy.geoblocked = set;
            policy.policy_flip = true;
        }
        "geniusdisplay.com" => {
            // nginx 403 across Russia; AppEngine sanctions page only from
            // Crimean exits (§4.2.2).
            policy.origin_blocked = CountrySet::from_codes([cc("RU")]);
            policy.origin_block_kind = Some(OriginBlockKind::Nginx);
            policy.appengine_sanctions = true;
            policy.crimea_only = true;
        }
        "fasttech.com" => {
            policy.geoblocked = CountrySet::from_codes([cc("CN")]);
        }
        "pbskids.com" => {
            // U.S. site blocking, likely for federal-sanctions reasons.
            policy.geoblocked = crate::country::sanctioned_all();
        }
        "zales.com" => {
            policy.bot_sensitive = true;
        }
        _ => unreachable!("unknown special domain"),
    }
    Some(DomainSpec {
        name: def.name.to_string(),
        rank: def.rank,
        category: def.category,
        providers: def.providers.to_vec(),
        cf_tier: def.cf_tier,
        base_page_bytes: def.base_page_bytes,
        on_citizenlab: false,
        policy,
        policy_seed: mix(seed ^ rank as u64 ^ 0x5bec),
    })
}

/// Reverse lookup: rank of a special domain name.
pub fn special_rank(host: &str) -> Option<u32> {
    if let Some(tld) = host.strip_prefix("airbnb.") {
        let idx = AIRBNB_TLDS.iter().position(|t| *t == tld)?;
        return Some(AIRBNB_BASE_RANK + idx as u32);
    }
    SPECIALS.iter().find(|d| d.name == host).map(|d| d.rank)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn special_round_trip() {
        for name in ["makro.co.za", "fasttech.com", "zales.com", "airbnb.fr"] {
            let rank = special_rank(name).unwrap();
            let spec = special_spec(7, rank).unwrap();
            assert_eq!(spec.name, name);
            assert_eq!(spec.rank, rank);
        }
        assert_eq!(special_rank("example.com"), None);
    }

    #[test]
    fn makro_blocks_33_countries_then_flips() {
        let spec = special_spec(7, special_rank("makro.co.za").unwrap()).unwrap();
        assert_eq!(spec.policy.geoblocked.len(), 33);
        assert!(spec.policy.policy_flip);
    }

    #[test]
    fn airbnb_family_blocks_iran_and_syria() {
        for tld in AIRBNB_TLDS {
            let spec = special_spec(7, special_rank(&format!("airbnb.{tld}")).unwrap()).unwrap();
            assert!(spec.policy.origin_blocked.contains(cc("IR")));
            assert!(spec.policy.origin_blocked.contains(cc("SY")));
            assert!(!spec.policy.origin_blocked.contains(cc("CU")));
            assert_eq!(spec.policy.origin_block_kind, Some(OriginBlockKind::Airbnb));
        }
    }

    #[test]
    fn geniusdisplay_is_crimea_granular() {
        let spec = special_spec(7, special_rank("geniusdisplay.com").unwrap()).unwrap();
        assert!(spec.policy.crimea_only);
        assert!(spec.policy.appengine_sanctions);
        assert!(spec.policy.origin_blocked.contains(cc("RU")));
    }

    #[test]
    fn zales_has_dual_providers() {
        let spec = special_spec(7, special_rank("zales.com").unwrap()).unwrap();
        assert!(spec.providers.contains(&Provider::Incapsula));
        assert!(spec.providers.contains(&Provider::Akamai));
    }
}
