//! A synthetic Citizen Lab global test list.
//!
//! The real list is a curated set of censorship-measurement URLs. It plays
//! two roles in the paper: (1) domains on it are removed from the probing
//! lists as a safety measure (§3.3), and (2) §7.1 shows that 9% of its
//! domains (97 of the global list) served a CDN geoblock page somewhere —
//! geoblocking confounds censorship measurement.
//!
//! The generated list therefore mixes dedicated sensitive domains (which the
//! Alexa population does not contain) with popular Alexa-population domains,
//! including a calibrated share of CDN geoblockers.

use std::collections::BTreeSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::domains::{mix, AlexaPopulation};

/// The synthetic Citizen Lab test list.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CitizenLabList {
    /// All domains on the list, sorted.
    pub domains: Vec<String>,
    /// The subset that belongs to the Alexa population (by name).
    pub alexa_members: Vec<String>,
}

/// Wordlist for dedicated sensitive domains (political, circumvention,
/// social topics the real list covers).
const SENSITIVE_STEMS: &[&str] = &[
    "freedom",
    "rights",
    "voice",
    "truth",
    "press",
    "democracy",
    "protest",
    "justice",
    "liberty",
    "exile",
    "uncensored",
    "openweb",
    "proxy",
    "tunnel",
    "secure",
    "anon",
    "report",
    "watch",
    "monitor",
    "leaks",
    "radio",
    "daily",
    "tribune",
    "herald",
];

const SENSITIVE_SUFFIXES: &[&str] = &[
    "news", "media", "online", "today", "net", "press", "world", "post", "wire", "times",
];

impl CitizenLabList {
    /// Generate a list against `population`. `scan_limit` bounds how deep
    /// into the population the Alexa-membership scan goes (40,000 for the
    /// full-size world).
    pub fn generate(seed: u64, population: &AlexaPopulation, scan_limit: u32) -> CitizenLabList {
        let mut rng = StdRng::seed_from_u64(mix(seed ^ 0xc17e));
        let mut domains = BTreeSet::new();
        let mut alexa_members = Vec::new();

        // Dedicated sensitive domains (~700 at full scale, proportional to
        // the scan limit at smaller scales).
        let dedicated = (700 * scan_limit / 40_000).max(20);
        for i in 0..dedicated {
            let a = SENSITIVE_STEMS[rng.gen_range(0..SENSITIVE_STEMS.len())];
            let b = SENSITIVE_SUFFIXES[rng.gen_range(0..SENSITIVE_SUFFIXES.len())];
            let tld = ["org", "com", "net", "info"][rng.gen_range(0..4usize)];
            domains.insert(format!("{a}{b}{i}.{tld}"));
        }

        // Alexa members: ordinary popular domains at a low rate, plus CDN
        // geoblockers drawn from *deep* ranks at a boosted rate, so that
        // ~9% of the final list geoblocks (the §7.1 confound) without the
        // list swallowing the head-of-list blockers the §4/§5 studies
        // measure (they are removed from probing by the safety filter).
        let limit = scan_limit.min(population.size());
        for rank in 1..=limit {
            let spec = population.spec(rank);
            if rng.gen_bool(0.007) {
                domains.insert(spec.name.clone());
                alexa_members.push(spec.name);
            }
        }
        let deep_start = 10_000.min(population.size() / 2);
        let deep_end = (deep_start + 3 * scan_limit).min(population.size());
        for rank in deep_start..=deep_end {
            let spec = population.spec(rank);
            if spec.policy.geoblocks() && rng.gen_bool(0.16) {
                domains.insert(spec.name.clone());
                alexa_members.push(spec.name);
            }
        }

        CitizenLabList {
            domains: domains.into_iter().collect(),
            alexa_members,
        }
    }

    /// Membership test.
    pub fn contains(&self, domain: &str) -> bool {
        self.domains
            .binary_search_by(|d| d.as_str().cmp(domain))
            .is_ok()
    }

    /// Number of domains on the list.
    pub fn len(&self) -> usize {
        self.domains.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.domains.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_list_is_citizen_lab_sized() {
        let pop = AlexaPopulation::new(42, 1_000_000);
        let list = CitizenLabList::generate(42, &pop, 40_000);
        // Real global list ≈ 1,000–1,200 domains.
        assert!((800..=1500).contains(&list.len()), "len {}", list.len());
    }

    #[test]
    fn geoblocker_share_is_near_nine_percent() {
        let pop = AlexaPopulation::new(42, 1_000_000);
        let list = CitizenLabList::generate(42, &pop, 40_000);
        let blockers = list
            .alexa_members
            .iter()
            .filter(|d| {
                pop.spec_of(d)
                    .map(|s| s.policy.geoblocks())
                    .unwrap_or(false)
            })
            .count();
        let share = blockers as f64 / list.len() as f64;
        // §7.1: 97 domains ≈ 9% of the test list.
        assert!(
            (0.05..=0.14).contains(&share),
            "share {share} ({blockers}/{})",
            list.len()
        );
    }

    #[test]
    fn contains_uses_sorted_lookup() {
        let pop = AlexaPopulation::new(1, 100_000);
        let list = CitizenLabList::generate(1, &pop, 5_000);
        for d in list.domains.iter().take(20) {
            assert!(list.contains(d));
        }
        assert!(!list.contains("definitely-not-on-the-list.example"));
    }

    #[test]
    fn generation_is_deterministic() {
        let pop = AlexaPopulation::new(9, 100_000);
        let a = CitizenLabList::generate(9, &pop, 5_000);
        let b = CitizenLabList::generate(9, &pop, 5_000);
        assert_eq!(a.domains, b.domains);
    }
}
