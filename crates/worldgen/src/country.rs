//! Countries: ISO codes, metadata relevant to geoblocking, and compact
//! country sets.
//!
//! The study sampled 195 countries through Luminati and kept the 177 that
//! answered every request (§4.1.1); North Korea had no vantage points at
//! all, which is why the Cloudflare ground truth (§6) could reveal blocking
//! the measurements could not see. The registry below carries the
//! per-country attributes the simulation needs: vantage availability, U.S.
//! sanctions status, state-censorship level, and an abuse-reputation score
//! (the driver of China/Russia-style blocking by free-tier customers).

use std::fmt;

use serde::{Deserialize, Serialize};

/// ISO 3166-1 alpha-2 country code (upper-case ASCII).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CountryCode(pub [u8; 2]);

impl CountryCode {
    /// Parse from a 2-letter string; case-insensitive.
    pub fn new(code: &str) -> CountryCode {
        let b = code.as_bytes();
        assert!(b.len() == 2, "country code must be 2 letters: {code:?}");
        CountryCode([b[0].to_ascii_uppercase(), b[1].to_ascii_uppercase()])
    }

    /// The code as a `&str`.
    pub fn as_str(&self) -> &str {
        std::str::from_utf8(&self.0).expect("codes are ASCII")
    }

    /// Index into the global [`registry`], if the code is registered.
    ///
    /// The registry is sorted by code, so this is a binary search; it is on
    /// the hot path of every per-probe policy check.
    pub fn index(&self) -> Option<usize> {
        registry().binary_search_by(|c| c.code.cmp(self)).ok()
    }

    /// Registered metadata for this code.
    pub fn info(&self) -> Option<&'static CountryInfo> {
        self.index().map(|i| &registry()[i])
    }
}

impl fmt::Debug for CountryCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

impl fmt::Display for CountryCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// Convenience macro-free shorthand used throughout the workspace.
pub fn cc(code: &str) -> CountryCode {
    CountryCode::new(code)
}

/// Per-country attributes driving the simulation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CountryInfo {
    /// ISO alpha-2 code.
    pub code: CountryCode,
    /// English short name.
    pub name: &'static str,
    /// Whether Luminati has residential exit nodes here. 177 countries do;
    /// North Korea famously does not.
    pub luminati: bool,
    /// Under comprehensive U.S. (OFAC) sanctions at study time.
    pub sanctioned: bool,
    /// State-censorship level: 0 none, 1 selective, 2 substantial,
    /// 3 pervasive. OONI identifies state censorship in the 12 countries
    /// with level ≥ 2.
    pub censorship: u8,
    /// Abuse-reputation score in [0, 1]; high values attract blocking by
    /// free-tier customers independent of sanctions (China, Russia, …).
    pub abuse: f64,
    /// One of the study's 16 validation VPSes is located here.
    pub vps: bool,
    /// Baseline residential-network reliability in [0, 1]; Comoros's 76.4%
    /// response rate (§4.1.1) comes from the low tail of this.
    pub reliability: f64,
}

/// Compact set of registered countries (bitset over registry indices).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CountrySet {
    bits: [u64; 4],
}

impl CountrySet {
    /// The empty set.
    pub fn new() -> CountrySet {
        CountrySet::default()
    }

    /// Set from an iterator of codes. Unregistered codes are ignored.
    pub fn from_codes<I: IntoIterator<Item = CountryCode>>(codes: I) -> CountrySet {
        let mut set = CountrySet::new();
        for c in codes {
            set.insert(c);
        }
        set
    }

    /// Insert `code`; returns whether it was newly inserted.
    pub fn insert(&mut self, code: CountryCode) -> bool {
        match code.index() {
            Some(i) => {
                let had = self.bits[i / 64] & (1 << (i % 64)) != 0;
                self.bits[i / 64] |= 1 << (i % 64);
                !had
            }
            None => false,
        }
    }

    /// Remove `code`.
    pub fn remove(&mut self, code: CountryCode) {
        if let Some(i) = code.index() {
            self.bits[i / 64] &= !(1 << (i % 64));
        }
    }

    /// Membership test.
    pub fn contains(&self, code: CountryCode) -> bool {
        code.index()
            .map(|i| self.bits[i / 64] & (1 << (i % 64)) != 0)
            .unwrap_or(false)
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.bits.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&b| b == 0)
    }

    /// Union.
    pub fn union(&self, other: &CountrySet) -> CountrySet {
        let mut bits = self.bits;
        for (b, o) in bits.iter_mut().zip(other.bits) {
            *b |= o;
        }
        CountrySet { bits }
    }

    /// Iterate over member codes in registry order.
    pub fn iter(&self) -> impl Iterator<Item = CountryCode> + '_ {
        registry()
            .iter()
            .enumerate()
            .filter(|(i, _)| self.bits[i / 64] & (1 << (i % 64)) != 0)
            .map(|(_, c)| c.code)
    }
}

/// The four comprehensively sanctioned countries the measurements can reach
/// (North Korea, also sanctioned, has no Luminati presence).
pub fn sanctioned_reachable() -> CountrySet {
    CountrySet::from_codes([cc("IR"), cc("SY"), cc("SD"), cc("CU")])
}

/// The full OFAC comprehensive-sanctions set at study time.
pub fn sanctioned_all() -> CountrySet {
    CountrySet::from_codes([cc("IR"), cc("SY"), cc("SD"), cc("CU"), cc("KP")])
}

macro_rules! country_table {
    ($( ($code:literal, $name:literal, lum=$lum:literal, sanc=$sanc:literal,
         cen=$cen:literal, abuse=$abuse:literal, vps=$vps:literal, rel=$rel:literal) ),* $(,)?) => {
        &[ $( CountryInfo {
            code: CountryCode([$code.as_bytes()[0], $code.as_bytes()[1]]),
            name: $name,
            luminati: $lum,
            sanctioned: $sanc,
            censorship: $cen,
            abuse: $abuse,
            vps: $vps,
            reliability: $rel,
        } ),* ]
    };
}

/// The global country registry: 195 countries, of which 177 have full
/// Luminati coverage.
pub fn registry() -> &'static [CountryInfo] {
    // Curated attributes for countries named in the paper's tables; sensible
    // defaults elsewhere. Reliability values centre on 0.97 with a low tail.
    static TABLE: &[CountryInfo] = country_table![
        (
            "AD",
            "Andorra",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.05,
            vps = false,
            rel = 0.97
        ),
        (
            "AE",
            "United Arab Emirates",
            lum = true,
            sanc = false,
            cen = 2,
            abuse = 0.15,
            vps = false,
            rel = 0.96
        ),
        (
            "AF",
            "Afghanistan",
            lum = true,
            sanc = false,
            cen = 1,
            abuse = 0.20,
            vps = false,
            rel = 0.92
        ),
        (
            "AG",
            "Antigua and Barbuda",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.05,
            vps = false,
            rel = 0.95
        ),
        (
            "AL",
            "Albania",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.12,
            vps = false,
            rel = 0.96
        ),
        (
            "AM",
            "Armenia",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.10,
            vps = false,
            rel = 0.96
        ),
        (
            "AO",
            "Angola",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.12,
            vps = false,
            rel = 0.93
        ),
        (
            "AR",
            "Argentina",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.15,
            vps = false,
            rel = 0.97
        ),
        (
            "AT",
            "Austria",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.05,
            vps = true,
            rel = 0.99
        ),
        (
            "AU",
            "Australia",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.06,
            vps = false,
            rel = 0.99
        ),
        (
            "AZ",
            "Azerbaijan",
            lum = true,
            sanc = false,
            cen = 1,
            abuse = 0.12,
            vps = false,
            rel = 0.95
        ),
        (
            "BA",
            "Bosnia and Herzegovina",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.10,
            vps = false,
            rel = 0.96
        ),
        (
            "BB",
            "Barbados",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.05,
            vps = false,
            rel = 0.95
        ),
        (
            "BD",
            "Bangladesh",
            lum = true,
            sanc = false,
            cen = 1,
            abuse = 0.25,
            vps = false,
            rel = 0.93
        ),
        (
            "BE",
            "Belgium",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.05,
            vps = false,
            rel = 0.99
        ),
        (
            "BF",
            "Burkina Faso",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.08,
            vps = false,
            rel = 0.92
        ),
        (
            "BG",
            "Bulgaria",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.18,
            vps = false,
            rel = 0.97
        ),
        (
            "BH",
            "Bahrain",
            lum = true,
            sanc = false,
            cen = 1,
            abuse = 0.08,
            vps = false,
            rel = 0.96
        ),
        (
            "BI",
            "Burundi",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.08,
            vps = false,
            rel = 0.90
        ),
        (
            "BJ",
            "Benin",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.08,
            vps = false,
            rel = 0.92
        ),
        (
            "BN",
            "Brunei",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.05,
            vps = false,
            rel = 0.95
        ),
        (
            "BO",
            "Bolivia",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.10,
            vps = false,
            rel = 0.94
        ),
        (
            "BR",
            "Brazil",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.50,
            vps = true,
            rel = 0.97
        ),
        (
            "BS",
            "Bahamas",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.05,
            vps = false,
            rel = 0.95
        ),
        (
            "BT",
            "Bhutan",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.05,
            vps = false,
            rel = 0.92
        ),
        (
            "BW",
            "Botswana",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.06,
            vps = false,
            rel = 0.93
        ),
        (
            "BY",
            "Belarus",
            lum = true,
            sanc = false,
            cen = 1,
            abuse = 0.25,
            vps = true,
            rel = 0.96
        ),
        (
            "BZ",
            "Belize",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.08,
            vps = false,
            rel = 0.94
        ),
        (
            "CA",
            "Canada",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.05,
            vps = true,
            rel = 0.99
        ),
        (
            "CD",
            "DR Congo",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.10,
            vps = false,
            rel = 0.90
        ),
        (
            "CF",
            "Central African Republic",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.08,
            vps = false,
            rel = 0.85
        ),
        (
            "CG",
            "Congo",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.08,
            vps = false,
            rel = 0.90
        ),
        (
            "CH",
            "Switzerland",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.04,
            vps = true,
            rel = 0.99
        ),
        (
            "CI",
            "Ivory Coast",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.12,
            vps = false,
            rel = 0.92
        ),
        (
            "CL",
            "Chile",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.08,
            vps = false,
            rel = 0.97
        ),
        (
            "CM",
            "Cameroon",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.12,
            vps = false,
            rel = 0.92
        ),
        (
            "CN",
            "China",
            lum = true,
            sanc = false,
            cen = 3,
            abuse = 0.90,
            vps = false,
            rel = 0.94
        ),
        (
            "CO",
            "Colombia",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.15,
            vps = false,
            rel = 0.96
        ),
        (
            "CR",
            "Costa Rica",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.06,
            vps = false,
            rel = 0.96
        ),
        (
            "CU",
            "Cuba",
            lum = true,
            sanc = true,
            cen = 2,
            abuse = 0.10,
            vps = false,
            rel = 0.90
        ),
        (
            "CV",
            "Cape Verde",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.05,
            vps = false,
            rel = 0.92
        ),
        (
            "CY",
            "Cyprus",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.08,
            vps = false,
            rel = 0.97
        ),
        (
            "CZ",
            "Czech Republic",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.35,
            vps = false,
            rel = 0.98
        ),
        (
            "DE",
            "Germany",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.08,
            vps = false,
            rel = 0.99
        ),
        (
            "DJ",
            "Djibouti",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.06,
            vps = false,
            rel = 0.90
        ),
        (
            "DK",
            "Denmark",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.04,
            vps = false,
            rel = 0.99
        ),
        (
            "DM",
            "Dominica",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.05,
            vps = false,
            rel = 0.92
        ),
        (
            "DO",
            "Dominican Republic",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.10,
            vps = false,
            rel = 0.94
        ),
        (
            "DZ",
            "Algeria",
            lum = true,
            sanc = false,
            cen = 1,
            abuse = 0.15,
            vps = false,
            rel = 0.93
        ),
        (
            "EC",
            "Ecuador",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.10,
            vps = false,
            rel = 0.95
        ),
        (
            "EE",
            "Estonia",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.30,
            vps = false,
            rel = 0.98
        ),
        (
            "EG",
            "Egypt",
            lum = true,
            sanc = false,
            cen = 2,
            abuse = 0.22,
            vps = true,
            rel = 0.94
        ),
        (
            "ER",
            "Eritrea",
            lum = false,
            sanc = false,
            cen = 2,
            abuse = 0.08,
            vps = false,
            rel = 0.85
        ),
        (
            "ES",
            "Spain",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.08,
            vps = false,
            rel = 0.99
        ),
        (
            "ET",
            "Ethiopia",
            lum = true,
            sanc = false,
            cen = 2,
            abuse = 0.10,
            vps = false,
            rel = 0.90
        ),
        (
            "FI",
            "Finland",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.04,
            vps = false,
            rel = 0.99
        ),
        (
            "FJ",
            "Fiji",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.05,
            vps = false,
            rel = 0.93
        ),
        (
            "FM",
            "Micronesia",
            lum = false,
            sanc = false,
            cen = 0,
            abuse = 0.05,
            vps = false,
            rel = 0.84
        ),
        (
            "FR",
            "France",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.08,
            vps = false,
            rel = 0.99
        ),
        (
            "GA",
            "Gabon",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.06,
            vps = false,
            rel = 0.91
        ),
        (
            "GB",
            "United Kingdom",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.06,
            vps = false,
            rel = 0.99
        ),
        (
            "GD",
            "Grenada",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.05,
            vps = false,
            rel = 0.92
        ),
        (
            "GE",
            "Georgia",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.10,
            vps = false,
            rel = 0.96
        ),
        (
            "GH",
            "Ghana",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.15,
            vps = false,
            rel = 0.93
        ),
        (
            "GM",
            "Gambia",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.06,
            vps = false,
            rel = 0.91
        ),
        (
            "GN",
            "Guinea",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.08,
            vps = false,
            rel = 0.90
        ),
        (
            "GQ",
            "Equatorial Guinea",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.06,
            vps = false,
            rel = 0.88
        ),
        (
            "GR",
            "Greece",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.08,
            vps = false,
            rel = 0.98
        ),
        (
            "GT",
            "Guatemala",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.10,
            vps = false,
            rel = 0.94
        ),
        (
            "GW",
            "Guinea-Bissau",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.06,
            vps = false,
            rel = 0.87
        ),
        (
            "GY",
            "Guyana",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.06,
            vps = false,
            rel = 0.92
        ),
        (
            "HK",
            "Hong Kong",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.12,
            vps = false,
            rel = 0.99
        ),
        (
            "HN",
            "Honduras",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.10,
            vps = false,
            rel = 0.93
        ),
        (
            "HR",
            "Croatia",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.30,
            vps = false,
            rel = 0.98
        ),
        (
            "HT",
            "Haiti",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.08,
            vps = false,
            rel = 0.88
        ),
        (
            "HU",
            "Hungary",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.12,
            vps = false,
            rel = 0.98
        ),
        (
            "ID",
            "Indonesia",
            lum = true,
            sanc = false,
            cen = 1,
            abuse = 0.45,
            vps = false,
            rel = 0.94
        ),
        (
            "IE",
            "Ireland",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.04,
            vps = false,
            rel = 0.99
        ),
        (
            "IL",
            "Israel",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.10,
            vps = true,
            rel = 0.98
        ),
        (
            "IN",
            "India",
            lum = true,
            sanc = false,
            cen = 1,
            abuse = 0.50,
            vps = false,
            rel = 0.95
        ),
        (
            "IQ",
            "Iraq",
            lum = true,
            sanc = false,
            cen = 1,
            abuse = 0.40,
            vps = false,
            rel = 0.91
        ),
        (
            "IR",
            "Iran",
            lum = true,
            sanc = true,
            cen = 3,
            abuse = 0.30,
            vps = true,
            rel = 0.93
        ),
        (
            "IS",
            "Iceland",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.03,
            vps = false,
            rel = 0.99
        ),
        (
            "IT",
            "Italy",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.08,
            vps = false,
            rel = 0.98
        ),
        (
            "JM",
            "Jamaica",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.08,
            vps = false,
            rel = 0.93
        ),
        (
            "JO",
            "Jordan",
            lum = true,
            sanc = false,
            cen = 1,
            abuse = 0.10,
            vps = false,
            rel = 0.95
        ),
        (
            "JP",
            "Japan",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.05,
            vps = false,
            rel = 0.99
        ),
        (
            "KE",
            "Kenya",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.15,
            vps = true,
            rel = 0.93
        ),
        (
            "KG",
            "Kyrgyzstan",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.12,
            vps = false,
            rel = 0.93
        ),
        (
            "KH",
            "Cambodia",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.15,
            vps = true,
            rel = 0.93
        ),
        (
            "KI",
            "Kiribati",
            lum = false,
            sanc = false,
            cen = 0,
            abuse = 0.05,
            vps = false,
            rel = 0.82
        ),
        (
            "KM",
            "Comoros",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.06,
            vps = false,
            rel = 0.76
        ),
        (
            "KN",
            "Saint Kitts and Nevis",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.05,
            vps = false,
            rel = 0.92
        ),
        (
            "KP",
            "North Korea",
            lum = false,
            sanc = true,
            cen = 3,
            abuse = 0.05,
            vps = false,
            rel = 0.50
        ),
        (
            "KR",
            "South Korea",
            lum = true,
            sanc = false,
            cen = 1,
            abuse = 0.12,
            vps = false,
            rel = 0.99
        ),
        (
            "KW",
            "Kuwait",
            lum = true,
            sanc = false,
            cen = 1,
            abuse = 0.08,
            vps = false,
            rel = 0.96
        ),
        (
            "KZ",
            "Kazakhstan",
            lum = true,
            sanc = false,
            cen = 1,
            abuse = 0.18,
            vps = false,
            rel = 0.95
        ),
        (
            "LA",
            "Laos",
            lum = true,
            sanc = false,
            cen = 1,
            abuse = 0.08,
            vps = false,
            rel = 0.91
        ),
        (
            "LB",
            "Lebanon",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.10,
            vps = false,
            rel = 0.94
        ),
        (
            "LC",
            "Saint Lucia",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.05,
            vps = false,
            rel = 0.92
        ),
        (
            "LI",
            "Liechtenstein",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.03,
            vps = false,
            rel = 0.97
        ),
        (
            "LK",
            "Sri Lanka",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.12,
            vps = false,
            rel = 0.94
        ),
        (
            "LR",
            "Liberia",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.08,
            vps = false,
            rel = 0.88
        ),
        (
            "LS",
            "Lesotho",
            lum = false,
            sanc = false,
            cen = 0,
            abuse = 0.05,
            vps = false,
            rel = 0.89
        ),
        (
            "LT",
            "Lithuania",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.15,
            vps = false,
            rel = 0.98
        ),
        (
            "LU",
            "Luxembourg",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.03,
            vps = false,
            rel = 0.99
        ),
        (
            "LV",
            "Latvia",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.20,
            vps = true,
            rel = 0.98
        ),
        (
            "LY",
            "Libya",
            lum = true,
            sanc = false,
            cen = 1,
            abuse = 0.15,
            vps = false,
            rel = 0.88
        ),
        (
            "MA",
            "Morocco",
            lum = true,
            sanc = false,
            cen = 1,
            abuse = 0.12,
            vps = false,
            rel = 0.94
        ),
        (
            "MC",
            "Monaco",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.03,
            vps = false,
            rel = 0.97
        ),
        (
            "MD",
            "Moldova",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.20,
            vps = false,
            rel = 0.96
        ),
        (
            "ME",
            "Montenegro",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.10,
            vps = false,
            rel = 0.96
        ),
        (
            "MG",
            "Madagascar",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.08,
            vps = false,
            rel = 0.90
        ),
        (
            "MH",
            "Marshall Islands",
            lum = false,
            sanc = false,
            cen = 0,
            abuse = 0.05,
            vps = false,
            rel = 0.83
        ),
        (
            "MK",
            "North Macedonia",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.12,
            vps = false,
            rel = 0.96
        ),
        (
            "ML",
            "Mali",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.08,
            vps = false,
            rel = 0.90
        ),
        (
            "MM",
            "Myanmar",
            lum = true,
            sanc = false,
            cen = 2,
            abuse = 0.12,
            vps = false,
            rel = 0.89
        ),
        (
            "MN",
            "Mongolia",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.08,
            vps = false,
            rel = 0.93
        ),
        (
            "MR",
            "Mauritania",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.06,
            vps = false,
            rel = 0.89
        ),
        (
            "MT",
            "Malta",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.06,
            vps = false,
            rel = 0.97
        ),
        (
            "MU",
            "Mauritius",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.06,
            vps = false,
            rel = 0.94
        ),
        (
            "MV",
            "Maldives",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.05,
            vps = false,
            rel = 0.93
        ),
        (
            "MW",
            "Malawi",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.06,
            vps = false,
            rel = 0.89
        ),
        (
            "MX",
            "Mexico",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.18,
            vps = false,
            rel = 0.96
        ),
        (
            "MY",
            "Malaysia",
            lum = true,
            sanc = false,
            cen = 1,
            abuse = 0.15,
            vps = false,
            rel = 0.97
        ),
        (
            "MZ",
            "Mozambique",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.08,
            vps = false,
            rel = 0.90
        ),
        (
            "NA",
            "Namibia",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.05,
            vps = false,
            rel = 0.92
        ),
        (
            "NE",
            "Niger",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.08,
            vps = false,
            rel = 0.89
        ),
        (
            "NG",
            "Nigeria",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.50,
            vps = true,
            rel = 0.92
        ),
        (
            "NI",
            "Nicaragua",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.08,
            vps = false,
            rel = 0.93
        ),
        (
            "NL",
            "Netherlands",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.08,
            vps = false,
            rel = 0.99
        ),
        (
            "NO",
            "Norway",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.03,
            vps = false,
            rel = 0.99
        ),
        (
            "NP",
            "Nepal",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.10,
            vps = false,
            rel = 0.92
        ),
        (
            "NR",
            "Nauru",
            lum = false,
            sanc = false,
            cen = 0,
            abuse = 0.05,
            vps = false,
            rel = 0.82
        ),
        (
            "NZ",
            "New Zealand",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.04,
            vps = true,
            rel = 0.99
        ),
        (
            "OM",
            "Oman",
            lum = true,
            sanc = false,
            cen = 1,
            abuse = 0.06,
            vps = false,
            rel = 0.95
        ),
        (
            "PA",
            "Panama",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.08,
            vps = false,
            rel = 0.95
        ),
        (
            "PE",
            "Peru",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.12,
            vps = false,
            rel = 0.95
        ),
        (
            "PG",
            "Papua New Guinea",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.06,
            vps = false,
            rel = 0.88
        ),
        (
            "PH",
            "Philippines",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.25,
            vps = false,
            rel = 0.94
        ),
        (
            "PK",
            "Pakistan",
            lum = true,
            sanc = false,
            cen = 2,
            abuse = 0.35,
            vps = false,
            rel = 0.93
        ),
        (
            "PL",
            "Poland",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.12,
            vps = false,
            rel = 0.98
        ),
        (
            "PT",
            "Portugal",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.06,
            vps = false,
            rel = 0.98
        ),
        (
            "PW",
            "Palau",
            lum = false,
            sanc = false,
            cen = 0,
            abuse = 0.05,
            vps = false,
            rel = 0.84
        ),
        (
            "PY",
            "Paraguay",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.08,
            vps = false,
            rel = 0.94
        ),
        (
            "QA",
            "Qatar",
            lum = true,
            sanc = false,
            cen = 1,
            abuse = 0.06,
            vps = false,
            rel = 0.96
        ),
        (
            "RO",
            "Romania",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.45,
            vps = false,
            rel = 0.97
        ),
        (
            "RS",
            "Serbia",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.15,
            vps = false,
            rel = 0.97
        ),
        (
            "RU",
            "Russia",
            lum = true,
            sanc = false,
            cen = 2,
            abuse = 0.85,
            vps = true,
            rel = 0.96
        ),
        (
            "RW",
            "Rwanda",
            lum = true,
            sanc = false,
            cen = 1,
            abuse = 0.06,
            vps = false,
            rel = 0.91
        ),
        (
            "SA",
            "Saudi Arabia",
            lum = true,
            sanc = false,
            cen = 2,
            abuse = 0.12,
            vps = false,
            rel = 0.96
        ),
        (
            "SB",
            "Solomon Islands",
            lum = false,
            sanc = false,
            cen = 0,
            abuse = 0.05,
            vps = false,
            rel = 0.86
        ),
        (
            "SC",
            "Seychelles",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.05,
            vps = false,
            rel = 0.94
        ),
        (
            "SD",
            "Sudan",
            lum = true,
            sanc = true,
            cen = 2,
            abuse = 0.12,
            vps = false,
            rel = 0.89
        ),
        (
            "SE",
            "Sweden",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.05,
            vps = false,
            rel = 0.99
        ),
        (
            "SG",
            "Singapore",
            lum = true,
            sanc = false,
            cen = 1,
            abuse = 0.06,
            vps = false,
            rel = 0.99
        ),
        (
            "SI",
            "Slovenia",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.08,
            vps = false,
            rel = 0.98
        ),
        (
            "SK",
            "Slovakia",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.10,
            vps = false,
            rel = 0.98
        ),
        (
            "SL",
            "Sierra Leone",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.06,
            vps = false,
            rel = 0.87
        ),
        (
            "SM",
            "San Marino",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.03,
            vps = false,
            rel = 0.96
        ),
        (
            "SN",
            "Senegal",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.08,
            vps = false,
            rel = 0.92
        ),
        (
            "SO",
            "Somalia",
            lum = false,
            sanc = false,
            cen = 1,
            abuse = 0.12,
            vps = false,
            rel = 0.80
        ),
        (
            "SR",
            "Suriname",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.06,
            vps = false,
            rel = 0.91
        ),
        (
            "SS",
            "South Sudan",
            lum = false,
            sanc = false,
            cen = 0,
            abuse = 0.08,
            vps = false,
            rel = 0.80
        ),
        (
            "ST",
            "Sao Tome and Principe",
            lum = false,
            sanc = false,
            cen = 0,
            abuse = 0.05,
            vps = false,
            rel = 0.86
        ),
        (
            "SV",
            "El Salvador",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.08,
            vps = false,
            rel = 0.93
        ),
        (
            "SY",
            "Syria",
            lum = true,
            sanc = true,
            cen = 3,
            abuse = 0.18,
            vps = false,
            rel = 0.87
        ),
        (
            "SZ",
            "Eswatini",
            lum = false,
            sanc = false,
            cen = 0,
            abuse = 0.05,
            vps = false,
            rel = 0.89
        ),
        (
            "TD",
            "Chad",
            lum = true,
            sanc = false,
            cen = 1,
            abuse = 0.08,
            vps = false,
            rel = 0.86
        ),
        (
            "TG",
            "Togo",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.08,
            vps = false,
            rel = 0.90
        ),
        (
            "TH",
            "Thailand",
            lum = true,
            sanc = false,
            cen = 2,
            abuse = 0.20,
            vps = false,
            rel = 0.96
        ),
        (
            "TJ",
            "Tajikistan",
            lum = true,
            sanc = false,
            cen = 1,
            abuse = 0.10,
            vps = false,
            rel = 0.91
        ),
        (
            "TL",
            "Timor-Leste",
            lum = false,
            sanc = false,
            cen = 0,
            abuse = 0.05,
            vps = false,
            rel = 0.85
        ),
        (
            "TM",
            "Turkmenistan",
            lum = false,
            sanc = false,
            cen = 3,
            abuse = 0.06,
            vps = false,
            rel = 0.82
        ),
        (
            "TN",
            "Tunisia",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.12,
            vps = false,
            rel = 0.94
        ),
        (
            "TO",
            "Tonga",
            lum = false,
            sanc = false,
            cen = 0,
            abuse = 0.05,
            vps = false,
            rel = 0.86
        ),
        (
            "TR",
            "Turkey",
            lum = true,
            sanc = false,
            cen = 2,
            abuse = 0.35,
            vps = true,
            rel = 0.96
        ),
        (
            "TT",
            "Trinidad and Tobago",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.06,
            vps = false,
            rel = 0.94
        ),
        (
            "TV",
            "Tuvalu",
            lum = false,
            sanc = false,
            cen = 0,
            abuse = 0.05,
            vps = false,
            rel = 0.81
        ),
        (
            "TW",
            "Taiwan",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.10,
            vps = false,
            rel = 0.99
        ),
        (
            "TZ",
            "Tanzania",
            lum = true,
            sanc = false,
            cen = 1,
            abuse = 0.10,
            vps = false,
            rel = 0.91
        ),
        (
            "UA",
            "Ukraine",
            lum = true,
            sanc = false,
            cen = 1,
            abuse = 0.60,
            vps = false,
            rel = 0.96
        ),
        (
            "UG",
            "Uganda",
            lum = true,
            sanc = false,
            cen = 1,
            abuse = 0.10,
            vps = false,
            rel = 0.91
        ),
        (
            "US",
            "United States",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.10,
            vps = true,
            rel = 0.99
        ),
        (
            "UY",
            "Uruguay",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.06,
            vps = false,
            rel = 0.96
        ),
        (
            "UZ",
            "Uzbekistan",
            lum = true,
            sanc = false,
            cen = 2,
            abuse = 0.12,
            vps = false,
            rel = 0.92
        ),
        (
            "VC",
            "Saint Vincent",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.05,
            vps = false,
            rel = 0.91
        ),
        (
            "VE",
            "Venezuela",
            lum = true,
            sanc = false,
            cen = 2,
            abuse = 0.18,
            vps = false,
            rel = 0.90
        ),
        (
            "VN",
            "Vietnam",
            lum = true,
            sanc = false,
            cen = 2,
            abuse = 0.55,
            vps = false,
            rel = 0.94
        ),
        (
            "VU",
            "Vanuatu",
            lum = false,
            sanc = false,
            cen = 0,
            abuse = 0.05,
            vps = false,
            rel = 0.86
        ),
        (
            "WS",
            "Samoa",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.05,
            vps = false,
            rel = 0.87
        ),
        (
            "YE",
            "Yemen",
            lum = true,
            sanc = false,
            cen = 2,
            abuse = 0.10,
            vps = false,
            rel = 0.82
        ),
        (
            "ZA",
            "South Africa",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.15,
            vps = false,
            rel = 0.96
        ),
        (
            "ZM",
            "Zambia",
            lum = true,
            sanc = false,
            cen = 0,
            abuse = 0.08,
            vps = false,
            rel = 0.91
        ),
        (
            "ZW",
            "Zimbabwe",
            lum = true,
            sanc = false,
            cen = 1,
            abuse = 0.10,
            vps = false,
            rel = 0.90
        ),
    ];
    TABLE
}

/// Countries with Luminati exit nodes — the measurable world.
pub fn luminati_countries() -> Vec<CountryCode> {
    registry()
        .iter()
        .filter(|c| c.luminati)
        .map(|c| c.code)
        .collect()
}

/// The 16 VPS validation countries of §2.2.
pub fn vps_countries() -> Vec<CountryCode> {
    registry()
        .iter()
        .filter(|c| c.vps)
        .map(|c| c.code)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_sorted_and_unique() {
        let codes: Vec<_> = registry().iter().map(|c| c.code).collect();
        let mut sorted = codes.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(codes, sorted, "registry must be sorted by code, unique");
    }

    #[test]
    fn registry_fits_bitset() {
        assert!(registry().len() <= 256);
    }

    #[test]
    fn sixteen_vps_countries() {
        assert_eq!(vps_countries().len(), 16);
        assert!(vps_countries().contains(&cc("IR")));
        assert!(vps_countries().contains(&cc("NZ")));
    }

    #[test]
    fn north_korea_has_no_luminati() {
        assert!(!cc("KP").info().unwrap().luminati);
        assert!(!luminati_countries().contains(&cc("KP")));
    }

    #[test]
    fn sanctioned_sets() {
        assert_eq!(sanctioned_reachable().len(), 4);
        assert_eq!(sanctioned_all().len(), 5);
        assert!(sanctioned_all().contains(cc("KP")));
        assert!(!sanctioned_reachable().contains(cc("KP")));
        for c in sanctioned_all().iter() {
            assert!(c.info().unwrap().sanctioned, "{c} should be sanctioned");
        }
    }

    #[test]
    fn country_set_operations() {
        let mut s = CountrySet::new();
        assert!(s.insert(cc("IR")));
        assert!(!s.insert(cc("IR")));
        assert!(s.insert(cc("CN")));
        assert_eq!(s.len(), 2);
        assert!(s.contains(cc("CN")));
        s.remove(cc("CN"));
        assert!(!s.contains(cc("CN")));
        assert_eq!(s.len(), 1);
        let members: Vec<_> = s.iter().collect();
        assert_eq!(members, vec![cc("IR")]);
    }

    #[test]
    fn union_combines() {
        let a = CountrySet::from_codes([cc("IR"), cc("SY")]);
        let b = CountrySet::from_codes([cc("SY"), cc("CU")]);
        let u = a.union(&b);
        assert_eq!(u.len(), 3);
    }

    #[test]
    fn twelve_ooni_censorship_countries() {
        let n = registry()
            .iter()
            .filter(|c| c.censorship >= 2 && c.luminati)
            .count();
        // The 12 countries where OONI identifies state censorship, plus a
        // handful of substantial-filtering countries; keep within a
        // realistic band.
        assert!((12..=22).contains(&n), "got {n}");
    }

    #[test]
    fn comoros_is_the_reliability_tail() {
        let komoros = cc("KM").info().unwrap();
        assert!(komoros.reliability < 0.8);
        let lower = registry()
            .iter()
            .filter(|c| c.luminati && c.reliability < komoros.reliability)
            .count();
        assert_eq!(
            lower, 0,
            "Comoros should be the least reliable Luminati country"
        );
    }

    #[test]
    fn unregistered_codes_are_harmless() {
        let bogus = cc("XX");
        assert!(bogus.index().is_none());
        let mut s = CountrySet::new();
        assert!(!s.insert(bogus));
        assert!(!s.contains(bogus));
    }
}
