//! The assembled synthetic world.

use serde::{Deserialize, Serialize};

use crate::citizenlab::CitizenLabList;
use crate::country::{luminati_countries, CountryCode};
use crate::domains::AlexaPopulation;

/// Scale and seed configuration for a world.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorldConfig {
    /// Master seed; every stochastic draw in the world derives from it.
    pub seed: u64,
    /// Size of the Alexa-style population (1,000,000 at full scale).
    pub population_size: u32,
    /// How deep the Citizen-Lab membership scan goes (40,000 at full scale).
    pub citizenlab_scan: u32,
}

impl WorldConfig {
    /// Full paper-scale configuration.
    pub fn paper(seed: u64) -> WorldConfig {
        WorldConfig {
            seed,
            population_size: 1_000_000,
            citizenlab_scan: 40_000,
        }
    }

    /// A reduced world for fast tests: 20k domains, shallow scans.
    pub fn tiny(seed: u64) -> WorldConfig {
        WorldConfig {
            seed,
            population_size: 20_000,
            citizenlab_scan: 2_000,
        }
    }
}

/// A fully-specified synthetic world: the domain population plus the
/// curated lists derived from it. CDN edges, proxies, and corpora are
/// built *on top of* a world by the netsim / proxynet / ooni modules.
#[derive(Debug, Clone)]
pub struct World {
    /// The configuration the world was built from.
    pub config: WorldConfig,
    /// The Alexa-style population.
    pub population: AlexaPopulation,
    /// The Citizen Lab test list.
    pub citizenlab: CitizenLabList,
}

impl World {
    /// Build a world from `config`.
    pub fn build(config: WorldConfig) -> World {
        let population = AlexaPopulation::new(config.seed, config.population_size);
        let citizenlab = CitizenLabList::generate(config.seed, &population, config.citizenlab_scan);
        World {
            config,
            population,
            citizenlab,
        }
    }

    /// The measurable countries (those with Luminati vantage points).
    pub fn countries(&self) -> Vec<CountryCode> {
        luminati_countries()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_world_builds_quickly_and_deterministically() {
        let a = World::build(WorldConfig::tiny(7));
        let b = World::build(WorldConfig::tiny(7));
        assert_eq!(a.population.spec(55).name, b.population.spec(55).name);
        assert_eq!(a.citizenlab.domains, b.citizenlab.domains);
        assert_eq!(a.countries().len(), 177);
    }
}
