//! One error type over the whole workspace.
//!
//! Each crate keeps its own precise error enum — an engine
//! misconfiguration ([`ConfigError`]), a failed fetch ([`FetchError`]), a
//! rejected checkpoint ([`CheckpointError`]), an orchestration failure
//! ([`OrchestratorError`]), a snapshot-store refusal ([`StoreError`]), or
//! a monitoring-run failure ([`MonitorError`]). Application code gluing
//! several subsystems together (the CLI, the daemon, integration
//! harnesses) usually wants one `Result<_, geoblock::Error>` instead;
//! the `From` impls here make `?` compose across all of them.

use std::fmt;

use geoblock_http::FetchError;
use geoblock_lumscan::ConfigError;
use geoblock_monitor::{MonitorError, StoreError};
use geoblock_orchestrator::{CheckpointError, OrchestratorError};

/// Any failure the workspace can produce, one level up.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// Engine configuration was rejected.
    Config(ConfigError),
    /// An HTTP fetch failed beyond retry.
    Fetch(FetchError),
    /// A checkpoint could not be read, written, or trusted.
    Checkpoint(CheckpointError),
    /// A sharded study pass failed.
    Orchestrator(OrchestratorError),
    /// The monitor's snapshot store refused a read or write.
    Store(StoreError),
    /// A monitoring run failed.
    Monitor(MonitorError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Config(e) => write!(f, "engine config: {e}"),
            Error::Fetch(e) => write!(f, "fetch: {e}"),
            Error::Checkpoint(e) => write!(f, "checkpoint: {e}"),
            Error::Orchestrator(e) => write!(f, "orchestrator: {e}"),
            Error::Store(e) => write!(f, "snapshot store: {e}"),
            Error::Monitor(e) => write!(f, "monitor: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Config(e) => Some(e),
            Error::Fetch(e) => Some(e),
            Error::Checkpoint(e) => Some(e),
            Error::Orchestrator(e) => Some(e),
            Error::Store(e) => Some(e),
            Error::Monitor(e) => Some(e),
        }
    }
}

impl From<ConfigError> for Error {
    fn from(e: ConfigError) -> Error {
        Error::Config(e)
    }
}

impl From<FetchError> for Error {
    fn from(e: FetchError) -> Error {
        Error::Fetch(e)
    }
}

impl From<CheckpointError> for Error {
    fn from(e: CheckpointError) -> Error {
        Error::Checkpoint(e)
    }
}

impl From<OrchestratorError> for Error {
    fn from(e: OrchestratorError) -> Error {
        Error::Orchestrator(e)
    }
}

impl From<StoreError> for Error {
    fn from(e: StoreError) -> Error {
        Error::Store(e)
    }
}

impl From<MonitorError> for Error {
    fn from(e: MonitorError) -> Error {
        Error::Monitor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lift<E: Into<Error>>(e: E) -> Error {
        e.into()
    }

    #[test]
    fn every_subsystem_error_lifts_via_question_mark() {
        let e = lift(CheckpointError::Version {
            found: 9,
            supported: 1,
        });
        assert!(matches!(e, Error::Checkpoint(_)));
        assert!(e.to_string().starts_with("checkpoint: "));

        let e = lift(OrchestratorError::Config("zero shards".to_string()));
        assert!(matches!(e, Error::Orchestrator(_)));

        let e = lift(StoreError::OutOfOrder {
            expected: 3,
            found: 7,
        });
        assert!(matches!(e, Error::Store(_)));
        assert!(e.to_string().starts_with("snapshot store: "));

        let e = lift(MonitorError::Config("cadence 0".to_string()));
        assert!(matches!(e, Error::Monitor(_)));
    }

    #[test]
    fn sources_chain_to_the_subsystem_error() {
        use std::error::Error as _;
        let e: Error = MonitorError::Store(StoreError::OutOfOrder {
            expected: 0,
            found: 2,
        })
        .into();
        // geoblock::Error -> MonitorError -> StoreError: two hops down.
        let monitor = e.source().expect("monitor source");
        assert!(monitor.source().is_some(), "store error below the monitor");
    }

    #[test]
    fn nested_monitor_errors_stay_whole() {
        // MonitorError already wraps orchestrator/store/checkpoint causes;
        // lifting must not flatten that structure.
        let e: Error = MonitorError::Checkpoint(CheckpointError::ConfigMismatch {
            expected: 1,
            found: 2,
        })
        .into();
        match e {
            Error::Monitor(MonitorError::Checkpoint(_)) => {}
            other => panic!("flattened: {other:?}"),
        }
    }
}
