//! `geoblock` — a command-line front end to the library.
//!
//! ```text
//! geoblock fingerprints [--json]             list (or dump) the block-page signatures
//! geoblock classify <file.html>             classify a saved page body
//! geoblock world [--seed N] [--size N] <domain>
//!                                            ground-truth lookup in a simulated world
//! geoblock dns [--seed N] [--size N] <name>  query the simulated DNS (NS/A/TXT)
//! geoblock probe [--seed N] [--size N] --from CC[,CC…] <domain>
//!                                            probe a domain through the proxy stack
//! geoblock study [--seed N] [--size N] --top N --out FILE
//!                                            run a miniature §4 study; write JSON + CSV
//! geoblock diff <before.json> <after.json>   compare two exported studies
//! ```
//!
//! `classify` works on real saved HTTP bodies too — the fingerprints are
//! the paper's, not simulation artefacts.

use std::process::ExitCode;
use std::sync::Arc;

use geoblock::prelude::*;

/// Live progress for long study passes, fed by the probe stream's
/// [`ProbeSink`] events: a stderr line every ~5% of completions, then a
/// closing newline. Probing continues unobserved if stderr is gone.
struct ProgressSink {
    total: usize,
    every: usize,
}

impl ProgressSink {
    fn new(total: usize) -> ProgressSink {
        ProgressSink {
            total,
            every: (total / 20).max(1),
        }
    }
}

impl ProbeSink for ProgressSink {
    fn completed(
        &mut self,
        _index: usize,
        _result: &ProbeResult,
        stats: &BatchStats,
        in_flight: usize,
    ) {
        if stats.total.is_multiple_of(self.every) || stats.total == self.total {
            eprint!(
                "\r  probed {}/{} ({} responded, {} recovered, {} in flight)   ",
                stats.total, self.total, stats.responded, stats.recovered, in_flight
            );
        }
    }

    fn finished(&mut self, _stats: &BatchStats) {
        eprintln!();
    }
}

struct Args {
    seed: u64,
    size: u32,
    top: u32,
    from: Vec<CountryCode>,
    out: Option<String>,
    json: bool,
    positional: Vec<String>,
}

fn parse_args(mut argv: Vec<String>) -> Result<(String, Args), String> {
    if argv.is_empty() {
        return Err("missing subcommand".into());
    }
    let command = argv.remove(0);
    let mut args = Args {
        seed: 42,
        size: 20_000,
        top: 800,
        from: vec![cc("IR"), cc("SY"), cc("CN"), cc("RU"), cc("US"), cc("DE")],
        out: None,
        json: false,
        positional: Vec::new(),
    };
    let mut it = argv.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" => {
                args.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--seed needs a number")?;
            }
            "--size" => {
                args.size = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--size needs a number")?;
            }
            "--top" => {
                args.top = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--top needs a number")?;
            }
            "--out" => {
                args.out = Some(it.next().ok_or("--out needs a path")?);
            }
            "--json" => args.json = true,
            "--from" => {
                let list = it.next().ok_or("--from needs countries")?;
                args.from = list
                    .split(',')
                    .map(|c| {
                        if c.len() == 2 {
                            Ok(cc(c))
                        } else {
                            Err(format!("bad country code {c:?}"))
                        }
                    })
                    .collect::<Result<_, _>>()?;
            }
            other if other.starts_with("--") => return Err(format!("unknown flag {other}")),
            other => args.positional.push(other.to_string()),
        }
    }
    Ok((command, args))
}

fn main() -> ExitCode {
    // Die quietly when piped into `head` instead of panicking on EPIPE.
    #[cfg(unix)]
    unsafe {
        libc::signal(libc::SIGPIPE, libc::SIG_DFL);
    }
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (command, args) = match parse_args(argv) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: {e}\n\nusage: geoblock <fingerprints|classify|world|dns|probe> …");
            return ExitCode::FAILURE;
        }
    };
    let result = match command.as_str() {
        "fingerprints" => fingerprints(&args),
        "classify" => classify(&args),
        "world" => world_info(&args),
        "dns" => dns(&args),
        "probe" => probe(&args),
        "study" => study(&args),
        "diff" => diff(&args),
        other => Err(format!("unknown subcommand {other:?}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn fingerprints(args: &Args) -> Result<(), String> {
    let set = FingerprintSet::paper();
    if args.json {
        println!("{}", set.to_json());
        return Ok(());
    }
    println!(
        "{:<22} {:<18} {:<10} signature",
        "page", "class", "provider"
    );
    for fp in set.iter() {
        println!(
            "{:<22} {:<18} {:<10} {}",
            fp.kind.label(),
            format!("{:?}", fp.kind.class()),
            fp.kind.provider().name(),
            fp.all_of.join("  +  ")
        );
    }
    Ok(())
}

fn classify(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .first()
        .ok_or("classify needs a file path (or - for stdin)")?;
    let body = if path == "-" {
        use std::io::Read;
        let mut buf = Vec::new();
        std::io::stdin()
            .read_to_end(&mut buf)
            .map_err(|e| e.to_string())?;
        buf
    } else {
        std::fs::read(path).map_err(|e| format!("{path}: {e}"))?
    };
    match CompiledFingerprintSet::paper().classify_bytes(&body) {
        Some(outcome) => {
            println!(
                "match: {} ({:?}, served by {})",
                outcome.kind,
                outcome.kind.class(),
                outcome.kind.provider()
            );
        }
        None => println!("no known block-page fingerprint matches"),
    }
    Ok(())
}

fn build_world(args: &Args) -> Arc<World> {
    Arc::new(World::build(WorldConfig {
        seed: args.seed,
        population_size: args.size,
        citizenlab_scan: (args.size / 10).max(500),
    }))
}

fn world_info(args: &Args) -> Result<(), String> {
    let world = build_world(args);
    let domain = args.positional.first().ok_or("world needs a domain")?;
    let spec = world.population.spec_of(domain).ok_or_else(|| {
        format!(
            "{domain} is not in this world (seed {}, size {})",
            args.seed, args.size
        )
    })?;
    println!("domain:    {}", spec.name);
    println!("rank:      {}", spec.rank);
    println!("category:  {}", spec.category);
    println!("providers: {:?}", spec.providers);
    if let Some(tier) = spec.cf_tier {
        println!("cf tier:   {}", tier.label());
    }
    println!("page size: {} bytes", spec.base_page_bytes);
    println!("citizenlab: {}", spec.on_citizenlab);
    let blocked: Vec<String> = spec
        .policy
        .geoblocked
        .iter()
        .map(|c| c.to_string())
        .collect();
    println!(
        "geoblocks: {}",
        if blocked.is_empty() {
            "-".to_string()
        } else {
            blocked.join(",")
        }
    );
    if spec.policy.appengine_sanctions {
        println!("appengine sanctions enforcement: yes");
    }
    if spec.policy.bot_sensitive {
        println!("bot-sensitive anti-abuse layer: yes");
    }
    Ok(())
}

fn dns(args: &Args) -> Result<(), String> {
    use geoblock::netsim::{DnsDb, RrType};
    let world = build_world(args);
    let db = DnsDb::new(world);
    let name = args.positional.first().ok_or("dns needs a name")?;
    for rrtype in [RrType::A, RrType::Ns, RrType::Txt] {
        for record in db.query(name, rrtype) {
            println!(
                "{:<40} {:<4} {}",
                record.name,
                format!("{rrtype:?}").to_uppercase(),
                record.data
            );
        }
    }
    Ok(())
}

fn study(args: &Args) -> Result<(), String> {
    use geoblock::analysis::export::{verdicts_csv, StudyExport};
    use geoblock::analysis::tables;

    let world = build_world(args);
    let internet = Arc::new(SimInternet::new(world.clone()));
    let engine = Arc::new(Lumscan::new(
        LuminatiNetwork::new(internet.clone()),
        LumscanConfig::builder()
            .build()
            .map_err(|e| e.to_string())?,
    ));
    let fg = Fortiguard::new(&world);
    let domains = fg.safe_toplist(args.top);
    eprintln!(
        "study: {} safe domains x {} countries, seed {}",
        domains.len(),
        args.from.len(),
        args.seed
    );
    let config = StudyConfig::builder()
        .countries(args.from.clone())
        .rep_countries(args.from.clone())
        .build()
        .map_err(|e| e.to_string())?;
    let baseline_probes = domains.len() * config.countries.len() * config.baseline_samples as usize;
    let runtime = tokio::runtime::Builder::new_multi_thread()
        .enable_all()
        .build()
        .map_err(|e| e.to_string())?;
    let mut progress = ProgressSink::new(baseline_probes);
    let mut session = StudySession::new(engine, config).sink(&mut progress);
    let mut result = runtime.block_on(session.baseline(&domains));
    internet.clock().advance_days(3);
    runtime.block_on(session.confirm(&mut result));
    let verdicts = result.verdicts(&ConfirmConfig::default());

    println!("{}", tables::table5(&verdicts).render());
    println!(
        "{}",
        tables::table_country_provider("Geoblocking by country x CDN", &verdicts).render()
    );

    if let Some(path) = &args.out {
        let export = StudyExport::new(args.seed, result.store, verdicts.clone());
        let file = std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?;
        export
            .write_json(std::io::BufWriter::new(file))
            .map_err(|e| e.to_string())?;
        let csv_path = format!("{path}.csv");
        std::fs::write(&csv_path, verdicts_csv(&verdicts)).map_err(|e| e.to_string())?;
        eprintln!("wrote {path} and {csv_path}");
    }
    Ok(())
}

fn diff(args: &Args) -> Result<(), String> {
    use geoblock::analysis::export::StudyExport;
    use geoblock::core::diffing::diff_studies;

    let [before_path, after_path] = args.positional.as_slice() else {
        return Err("diff needs two exported study files".into());
    };
    let load = |path: &str| -> Result<StudyExport, String> {
        let file = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
        StudyExport::read_json(std::io::BufReader::new(file)).map_err(|e| e.to_string())
    };
    let before = load(before_path)?;
    let after = load(after_path)?;
    let diff = diff_studies(&before.verdicts, &after.verdicts);

    println!(
        "stable pairs: {}   newly blocked: {}   unblocked: {}",
        diff.stable_pairs,
        diff.newly_blocked_pairs(),
        diff.unblocked_pairs()
    );
    for delta in &diff.deltas {
        let added: Vec<String> = delta.newly_blocked.iter().map(|c| c.to_string()).collect();
        let removed: Vec<String> = delta.unblocked.iter().map(|c| c.to_string()).collect();
        let tag = if delta.is_full_retreat() {
            " [full retreat]"
        } else if delta.provider_changed() {
            " [provider changed]"
        } else {
            ""
        };
        println!(
            "{}: +[{}] -[{}]{tag}",
            delta.domain,
            added.join(","),
            removed.join(",")
        );
    }
    Ok(())
}

fn probe(args: &Args) -> Result<(), String> {
    let domain = args
        .positional
        .first()
        .ok_or("probe needs a domain")?
        .clone();
    let world = build_world(args);
    let internet = Arc::new(SimInternet::new(world));
    let engine = Arc::new(Lumscan::new(
        LuminatiNetwork::new(internet),
        LumscanConfig::builder()
            .build()
            .map_err(|e| e.to_string())?,
    ));
    let targets: Vec<ProbeTarget> = args
        .from
        .iter()
        .map(|c| ProbeTarget::http(&domain, *c))
        .collect();
    let runtime = tokio::runtime::Builder::new_multi_thread()
        .enable_all()
        .build()
        .map_err(|e| e.to_string())?;
    let fingerprints = CompiledFingerprintSet::paper();
    // Stream the probes: each result is printed (in target order) and
    // dropped the moment it completes.
    runtime.block_on(async {
        let mut stream = engine.probe_stream(targets).ordered();
        while let Some((_, result)) = stream.next().await {
            let country = result.target.country;
            match &result.outcome {
                Err(e) => println!("{country}: error — {e}"),
                Ok(chain) => {
                    let resp = chain.final_response();
                    match fingerprints.classify(resp) {
                        Some(m) => println!("{country}: {} — {} block page", resp.status, m.kind),
                        None => println!(
                            "{country}: {} — {} bytes, {} redirects",
                            resp.status,
                            resp.body.len(),
                            chain.redirect_count()
                        ),
                    }
                }
            }
        }
    });
    Ok(())
}
