//! # geoblock
//!
//! A full reproduction of *"403 Forbidden: A Global View of CDN
//! Geoblocking"* (McDonald et al., IMC 2018) as a Rust library: the
//! block-page fingerprinting and discovery pipeline, the Lumscan probing
//! engine, and — because real vantage points are not available — a
//! deterministic simulated Internet (CDN edges, DNS, GeoIP, censorship)
//! and a Luminati-style residential proxy network to measure.
//!
//! This crate is a facade re-exporting the workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`http`] | `geoblock-http` | HTTP model types |
//! | [`blockpages`] | `geoblock-blockpages` | block-page templates + fingerprints |
//! | [`textmine`] | `geoblock-textmine` | TF-IDF + single-link clustering |
//! | [`lumscan`] | `geoblock-lumscan` | the probing engine |
//! | [`worldgen`] | `geoblock-worldgen` | the synthetic world |
//! | [`netsim`] | `geoblock-netsim` | the simulated Internet |
//! | [`proxynet`] | `geoblock-proxynet` | the residential proxy network |
//! | [`core`] | `geoblock-core` | the measurement pipeline |
//! | [`orchestrator`] | `geoblock-orchestrator` | sharded, resumable study passes |
//! | [`monitor`] | `geoblock-monitor` | longitudinal monitoring + cached query API |
//! | [`analysis`] | `geoblock-analysis` | tables, figures, statistics |
//! | [`simtest`] | `geoblock-simtest` | deterministic simulation testing |
//!
//! Failures from any subsystem lift into one [`Error`] type via `?`.
//!
//! # Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use geoblock::prelude::*;
//!
//! # #[tokio::main(flavor = "current_thread")]
//! # async fn main() {
//! // A small world, its Internet, and a proxy network to measure through.
//! let world = Arc::new(World::build(WorldConfig::tiny(42)));
//! let internet = Arc::new(SimInternet::new(world.clone()));
//! let luminati = LuminatiNetwork::new(internet);
//! let engine = Arc::new(Lumscan::new(luminati, LumscanConfig::default()));
//!
//! // Probe one domain from two countries: targets stream through the
//! // engine and completions are consumed as they land (`ordered()` yields
//! // them in target order; drop it for completion order).
//! let domain = world.population.spec(5).name.clone();
//! let targets = vec![
//!     ProbeTarget::http(&domain, cc("US")),
//!     ProbeTarget::http(&domain, cc("IR")),
//! ];
//! let mut stream = engine.probe_stream(targets).ordered();
//! let mut seen = 0;
//! while let Some((index, result)) = stream.next().await {
//!     assert_eq!(index, seen);
//!     let _ = result; // classify-and-drop; nothing is buffered
//!     seen += 1;
//! }
//! assert_eq!(seen, 2);
//! assert_eq!(stream.into_stats().total, 2);
//! # }
//! ```

pub use geoblock_analysis as analysis;
pub use geoblock_blockpages as blockpages;
pub use geoblock_core as core;
pub use geoblock_http as http;
pub use geoblock_lumscan as lumscan;
pub use geoblock_monitor as monitor;
pub use geoblock_netsim as netsim;
pub use geoblock_orchestrator as orchestrator;
pub use geoblock_proxynet as proxynet;
pub use geoblock_simtest as simtest;
pub use geoblock_textmine as textmine;
pub use geoblock_worldgen as worldgen;

mod error;
pub use error::Error;

/// The most commonly used types, re-exported flat.
///
/// Everything a study driver needs: the engine and its builder-style
/// configuration, the retry/breaker subsystem, fault injection, the
/// simulated world and networks, and the measurement pipeline's entry
/// points.
pub mod prelude {
    pub use geoblock_analysis::{Fortiguard, TextTable};
    pub use geoblock_blockpages::{
        CompiledFingerprintSet, FingerprintSet, PageClass, PageKind, Provider,
    };
    pub use geoblock_core::{
        diff_studies, AdaptiveBandit, ConfirmConfig, DeltaPolicy, EvidenceState, GeoblockVerdict,
        Obs, PaperExact, ProbeBudget, ProbeCoord, RoundCoord, RoundSpend, SampleRequest,
        SampleStore, SamplingPolicy, SessionOutcome, StudyAccumulator, StudyConfig,
        StudyConfigBuilder, StudyDiff, StudyResult, StudySession, TargetPlan,
    };
    pub use geoblock_http::{
        ClientProfile, FetchError, HeaderMap, HeaderProfile, Method, Request, Response,
        Retryability, StatusCode, TlsClientClass, Url,
    };
    pub use geoblock_lumscan::{
        BatchStats, CircuitBreaker, ConfigError, GaugeSink, Lumscan, LumscanConfig,
        LumscanConfigBuilder, NoopSink, ProbeResult, ProbeSink, ProbeStream, ProbeTarget,
        RetryPolicy, SessionId, SharedSink, Transport, TransportRequest,
    };
    pub use geoblock_monitor::{
        Monitor, MonitorConfig, MonitorError, MonitorReport, QueryService, ScanMode, ScanSnapshot,
        SnapshotStore, StoreError,
    };
    pub use geoblock_netsim::{
        ClientContext, DnsDb, PolicyChange, PolicyTimeline, SimInternet, TimelineEvent,
        VpsTransport,
    };
    pub use geoblock_orchestrator::{
        Checkpoint, CheckpointError, Orchestrator, OrchestratorConfig, OrchestratorRun, PolicyRun,
        ShardPlan,
    };
    pub use geoblock_proxynet::{
        FaultEvent, FaultKind, FaultPlan, FaultStatsSnapshot, FaultyTransport, LuminatiConfig,
        LuminatiNetwork, ScriptedFaults,
    };
    pub use geoblock_simtest::{
        check_study, run_scenario_with_config, run_sweep, scenario_config, scenario_engine_config,
        SimWeb, StudyFingerprint, StudyTrace, SweepReport, TraceSink,
    };
    pub use geoblock_worldgen::{
        cc, AlexaPopulation, Category, CfTier, CountryCode, CountrySet, RulesSnapshot, World,
        WorldConfig,
    };
}
