/root/repo/target/release/deps/geoblock-d447e9c69d7bfcef.d: src/bin/geoblock.rs

/root/repo/target/release/deps/geoblock-d447e9c69d7bfcef: src/bin/geoblock.rs

src/bin/geoblock.rs:
