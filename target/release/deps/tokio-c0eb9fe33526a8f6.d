/root/repo/target/release/deps/tokio-c0eb9fe33526a8f6.d: /tmp/stubs/tokio/src/lib.rs

/root/repo/target/release/deps/libtokio-c0eb9fe33526a8f6.rlib: /tmp/stubs/tokio/src/lib.rs

/root/repo/target/release/deps/libtokio-c0eb9fe33526a8f6.rmeta: /tmp/stubs/tokio/src/lib.rs

/tmp/stubs/tokio/src/lib.rs:
