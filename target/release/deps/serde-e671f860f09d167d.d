/root/repo/target/release/deps/serde-e671f860f09d167d.d: /tmp/stubs/serde/src/lib.rs

/root/repo/target/release/deps/libserde-e671f860f09d167d.rlib: /tmp/stubs/serde/src/lib.rs

/root/repo/target/release/deps/libserde-e671f860f09d167d.rmeta: /tmp/stubs/serde/src/lib.rs

/tmp/stubs/serde/src/lib.rs:
