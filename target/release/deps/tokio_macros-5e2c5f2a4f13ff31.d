/root/repo/target/release/deps/tokio_macros-5e2c5f2a4f13ff31.d: /tmp/stubs/tokio-macros/src/lib.rs

/root/repo/target/release/deps/libtokio_macros-5e2c5f2a4f13ff31.so: /tmp/stubs/tokio-macros/src/lib.rs

/tmp/stubs/tokio-macros/src/lib.rs:
