/root/repo/target/release/deps/geoblock_analysis-813447e7cd60971a.d: crates/analysis/src/lib.rs crates/analysis/src/bootstrap.rs crates/analysis/src/coverage.rs crates/analysis/src/export.rs crates/analysis/src/figures.rs crates/analysis/src/fortiguard.rs crates/analysis/src/ooni_scan.rs crates/analysis/src/paper.rs crates/analysis/src/render.rs crates/analysis/src/sampling.rs crates/analysis/src/stats.rs crates/analysis/src/tables.rs

/root/repo/target/release/deps/libgeoblock_analysis-813447e7cd60971a.rlib: crates/analysis/src/lib.rs crates/analysis/src/bootstrap.rs crates/analysis/src/coverage.rs crates/analysis/src/export.rs crates/analysis/src/figures.rs crates/analysis/src/fortiguard.rs crates/analysis/src/ooni_scan.rs crates/analysis/src/paper.rs crates/analysis/src/render.rs crates/analysis/src/sampling.rs crates/analysis/src/stats.rs crates/analysis/src/tables.rs

/root/repo/target/release/deps/libgeoblock_analysis-813447e7cd60971a.rmeta: crates/analysis/src/lib.rs crates/analysis/src/bootstrap.rs crates/analysis/src/coverage.rs crates/analysis/src/export.rs crates/analysis/src/figures.rs crates/analysis/src/fortiguard.rs crates/analysis/src/ooni_scan.rs crates/analysis/src/paper.rs crates/analysis/src/render.rs crates/analysis/src/sampling.rs crates/analysis/src/stats.rs crates/analysis/src/tables.rs

crates/analysis/src/lib.rs:
crates/analysis/src/bootstrap.rs:
crates/analysis/src/coverage.rs:
crates/analysis/src/export.rs:
crates/analysis/src/figures.rs:
crates/analysis/src/fortiguard.rs:
crates/analysis/src/ooni_scan.rs:
crates/analysis/src/paper.rs:
crates/analysis/src/render.rs:
crates/analysis/src/sampling.rs:
crates/analysis/src/stats.rs:
crates/analysis/src/tables.rs:
