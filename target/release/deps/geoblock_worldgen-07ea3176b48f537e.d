/root/repo/target/release/deps/geoblock_worldgen-07ea3176b48f537e.d: crates/worldgen/src/lib.rs crates/worldgen/src/category.rs crates/worldgen/src/citizenlab.rs crates/worldgen/src/cloudflare_rules.rs crates/worldgen/src/country.rs crates/worldgen/src/domains.rs crates/worldgen/src/ooni.rs crates/worldgen/src/policy.rs crates/worldgen/src/special.rs crates/worldgen/src/world.rs

/root/repo/target/release/deps/libgeoblock_worldgen-07ea3176b48f537e.rlib: crates/worldgen/src/lib.rs crates/worldgen/src/category.rs crates/worldgen/src/citizenlab.rs crates/worldgen/src/cloudflare_rules.rs crates/worldgen/src/country.rs crates/worldgen/src/domains.rs crates/worldgen/src/ooni.rs crates/worldgen/src/policy.rs crates/worldgen/src/special.rs crates/worldgen/src/world.rs

/root/repo/target/release/deps/libgeoblock_worldgen-07ea3176b48f537e.rmeta: crates/worldgen/src/lib.rs crates/worldgen/src/category.rs crates/worldgen/src/citizenlab.rs crates/worldgen/src/cloudflare_rules.rs crates/worldgen/src/country.rs crates/worldgen/src/domains.rs crates/worldgen/src/ooni.rs crates/worldgen/src/policy.rs crates/worldgen/src/special.rs crates/worldgen/src/world.rs

crates/worldgen/src/lib.rs:
crates/worldgen/src/category.rs:
crates/worldgen/src/citizenlab.rs:
crates/worldgen/src/cloudflare_rules.rs:
crates/worldgen/src/country.rs:
crates/worldgen/src/domains.rs:
crates/worldgen/src/ooni.rs:
crates/worldgen/src/policy.rs:
crates/worldgen/src/special.rs:
crates/worldgen/src/world.rs:
