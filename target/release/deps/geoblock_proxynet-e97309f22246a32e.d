/root/repo/target/release/deps/geoblock_proxynet-e97309f22246a32e.d: crates/proxynet/src/lib.rs crates/proxynet/src/exits.rs crates/proxynet/src/faults.rs crates/proxynet/src/network.rs

/root/repo/target/release/deps/libgeoblock_proxynet-e97309f22246a32e.rlib: crates/proxynet/src/lib.rs crates/proxynet/src/exits.rs crates/proxynet/src/faults.rs crates/proxynet/src/network.rs

/root/repo/target/release/deps/libgeoblock_proxynet-e97309f22246a32e.rmeta: crates/proxynet/src/lib.rs crates/proxynet/src/exits.rs crates/proxynet/src/faults.rs crates/proxynet/src/network.rs

crates/proxynet/src/lib.rs:
crates/proxynet/src/exits.rs:
crates/proxynet/src/faults.rs:
crates/proxynet/src/network.rs:
