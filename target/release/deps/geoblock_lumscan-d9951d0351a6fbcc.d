/root/repo/target/release/deps/geoblock_lumscan-d9951d0351a6fbcc.d: crates/lumscan/src/lib.rs crates/lumscan/src/engine.rs crates/lumscan/src/result.rs crates/lumscan/src/retry.rs crates/lumscan/src/session.rs crates/lumscan/src/stream.rs crates/lumscan/src/transport.rs

/root/repo/target/release/deps/libgeoblock_lumscan-d9951d0351a6fbcc.rlib: crates/lumscan/src/lib.rs crates/lumscan/src/engine.rs crates/lumscan/src/result.rs crates/lumscan/src/retry.rs crates/lumscan/src/session.rs crates/lumscan/src/stream.rs crates/lumscan/src/transport.rs

/root/repo/target/release/deps/libgeoblock_lumscan-d9951d0351a6fbcc.rmeta: crates/lumscan/src/lib.rs crates/lumscan/src/engine.rs crates/lumscan/src/result.rs crates/lumscan/src/retry.rs crates/lumscan/src/session.rs crates/lumscan/src/stream.rs crates/lumscan/src/transport.rs

crates/lumscan/src/lib.rs:
crates/lumscan/src/engine.rs:
crates/lumscan/src/result.rs:
crates/lumscan/src/retry.rs:
crates/lumscan/src/session.rs:
crates/lumscan/src/stream.rs:
crates/lumscan/src/transport.rs:
