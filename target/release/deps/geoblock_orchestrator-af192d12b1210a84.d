/root/repo/target/release/deps/geoblock_orchestrator-af192d12b1210a84.d: crates/orchestrator/src/lib.rs crates/orchestrator/src/checkpoint.rs crates/orchestrator/src/orchestrator.rs crates/orchestrator/src/record.rs crates/orchestrator/src/shard.rs

/root/repo/target/release/deps/libgeoblock_orchestrator-af192d12b1210a84.rlib: crates/orchestrator/src/lib.rs crates/orchestrator/src/checkpoint.rs crates/orchestrator/src/orchestrator.rs crates/orchestrator/src/record.rs crates/orchestrator/src/shard.rs

/root/repo/target/release/deps/libgeoblock_orchestrator-af192d12b1210a84.rmeta: crates/orchestrator/src/lib.rs crates/orchestrator/src/checkpoint.rs crates/orchestrator/src/orchestrator.rs crates/orchestrator/src/record.rs crates/orchestrator/src/shard.rs

crates/orchestrator/src/lib.rs:
crates/orchestrator/src/checkpoint.rs:
crates/orchestrator/src/orchestrator.rs:
crates/orchestrator/src/record.rs:
crates/orchestrator/src/shard.rs:
