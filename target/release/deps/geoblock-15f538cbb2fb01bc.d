/root/repo/target/release/deps/geoblock-15f538cbb2fb01bc.d: src/lib.rs

/root/repo/target/release/deps/libgeoblock-15f538cbb2fb01bc.rlib: src/lib.rs

/root/repo/target/release/deps/libgeoblock-15f538cbb2fb01bc.rmeta: src/lib.rs

src/lib.rs:
