/root/repo/target/release/deps/geoblock_http-c50b0f1ac4b3f2c1.d: crates/http/src/lib.rs crates/http/src/chain.rs crates/http/src/error.rs crates/http/src/headers.rs crates/http/src/method.rs crates/http/src/profile.rs crates/http/src/request.rs crates/http/src/response.rs crates/http/src/status.rs crates/http/src/url.rs crates/http/src/wire.rs

/root/repo/target/release/deps/libgeoblock_http-c50b0f1ac4b3f2c1.rlib: crates/http/src/lib.rs crates/http/src/chain.rs crates/http/src/error.rs crates/http/src/headers.rs crates/http/src/method.rs crates/http/src/profile.rs crates/http/src/request.rs crates/http/src/response.rs crates/http/src/status.rs crates/http/src/url.rs crates/http/src/wire.rs

/root/repo/target/release/deps/libgeoblock_http-c50b0f1ac4b3f2c1.rmeta: crates/http/src/lib.rs crates/http/src/chain.rs crates/http/src/error.rs crates/http/src/headers.rs crates/http/src/method.rs crates/http/src/profile.rs crates/http/src/request.rs crates/http/src/response.rs crates/http/src/status.rs crates/http/src/url.rs crates/http/src/wire.rs

crates/http/src/lib.rs:
crates/http/src/chain.rs:
crates/http/src/error.rs:
crates/http/src/headers.rs:
crates/http/src/method.rs:
crates/http/src/profile.rs:
crates/http/src/request.rs:
crates/http/src/response.rs:
crates/http/src/status.rs:
crates/http/src/url.rs:
crates/http/src/wire.rs:
