/root/repo/target/release/deps/libc-bbeeafdc215b71fc.d: /tmp/stubs/libc/src/lib.rs

/root/repo/target/release/deps/liblibc-bbeeafdc215b71fc.rlib: /tmp/stubs/libc/src/lib.rs

/root/repo/target/release/deps/liblibc-bbeeafdc215b71fc.rmeta: /tmp/stubs/libc/src/lib.rs

/tmp/stubs/libc/src/lib.rs:
