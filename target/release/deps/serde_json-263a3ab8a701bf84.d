/root/repo/target/release/deps/serde_json-263a3ab8a701bf84.d: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-263a3ab8a701bf84.rlib: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-263a3ab8a701bf84.rmeta: /tmp/stubs/serde_json/src/lib.rs

/tmp/stubs/serde_json/src/lib.rs:
