/root/repo/target/release/deps/geoblock_netsim-53beed9a1acadeb6.d: crates/netsim/src/lib.rs crates/netsim/src/censor.rs crates/netsim/src/clock.rs crates/netsim/src/dns.rs crates/netsim/src/edge.rs crates/netsim/src/geoip.rs crates/netsim/src/net.rs crates/netsim/src/origin.rs crates/netsim/src/vps.rs

/root/repo/target/release/deps/libgeoblock_netsim-53beed9a1acadeb6.rlib: crates/netsim/src/lib.rs crates/netsim/src/censor.rs crates/netsim/src/clock.rs crates/netsim/src/dns.rs crates/netsim/src/edge.rs crates/netsim/src/geoip.rs crates/netsim/src/net.rs crates/netsim/src/origin.rs crates/netsim/src/vps.rs

/root/repo/target/release/deps/libgeoblock_netsim-53beed9a1acadeb6.rmeta: crates/netsim/src/lib.rs crates/netsim/src/censor.rs crates/netsim/src/clock.rs crates/netsim/src/dns.rs crates/netsim/src/edge.rs crates/netsim/src/geoip.rs crates/netsim/src/net.rs crates/netsim/src/origin.rs crates/netsim/src/vps.rs

crates/netsim/src/lib.rs:
crates/netsim/src/censor.rs:
crates/netsim/src/clock.rs:
crates/netsim/src/dns.rs:
crates/netsim/src/edge.rs:
crates/netsim/src/geoip.rs:
crates/netsim/src/net.rs:
crates/netsim/src/origin.rs:
crates/netsim/src/vps.rs:
