/root/repo/target/release/deps/rand-a623c451a8bbdcc8.d: /tmp/stubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-a623c451a8bbdcc8.rlib: /tmp/stubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-a623c451a8bbdcc8.rmeta: /tmp/stubs/rand/src/lib.rs

/tmp/stubs/rand/src/lib.rs:
