/root/repo/target/release/deps/geoblock_textmine-feb1c7ddbcea6e72.d: crates/textmine/src/lib.rs crates/textmine/src/cluster.rs crates/textmine/src/ngrams.rs crates/textmine/src/sparse.rs crates/textmine/src/tfidf.rs crates/textmine/src/tokenize.rs

/root/repo/target/release/deps/libgeoblock_textmine-feb1c7ddbcea6e72.rlib: crates/textmine/src/lib.rs crates/textmine/src/cluster.rs crates/textmine/src/ngrams.rs crates/textmine/src/sparse.rs crates/textmine/src/tfidf.rs crates/textmine/src/tokenize.rs

/root/repo/target/release/deps/libgeoblock_textmine-feb1c7ddbcea6e72.rmeta: crates/textmine/src/lib.rs crates/textmine/src/cluster.rs crates/textmine/src/ngrams.rs crates/textmine/src/sparse.rs crates/textmine/src/tfidf.rs crates/textmine/src/tokenize.rs

crates/textmine/src/lib.rs:
crates/textmine/src/cluster.rs:
crates/textmine/src/ngrams.rs:
crates/textmine/src/sparse.rs:
crates/textmine/src/tfidf.rs:
crates/textmine/src/tokenize.rs:
