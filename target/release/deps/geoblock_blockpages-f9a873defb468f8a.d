/root/repo/target/release/deps/geoblock_blockpages-f9a873defb468f8a.d: crates/blockpages/src/lib.rs crates/blockpages/src/fingerprints.rs crates/blockpages/src/kind.rs crates/blockpages/src/provider.rs crates/blockpages/src/templates.rs

/root/repo/target/release/deps/libgeoblock_blockpages-f9a873defb468f8a.rlib: crates/blockpages/src/lib.rs crates/blockpages/src/fingerprints.rs crates/blockpages/src/kind.rs crates/blockpages/src/provider.rs crates/blockpages/src/templates.rs

/root/repo/target/release/deps/libgeoblock_blockpages-f9a873defb468f8a.rmeta: crates/blockpages/src/lib.rs crates/blockpages/src/fingerprints.rs crates/blockpages/src/kind.rs crates/blockpages/src/provider.rs crates/blockpages/src/templates.rs

crates/blockpages/src/lib.rs:
crates/blockpages/src/fingerprints.rs:
crates/blockpages/src/kind.rs:
crates/blockpages/src/provider.rs:
crates/blockpages/src/templates.rs:
