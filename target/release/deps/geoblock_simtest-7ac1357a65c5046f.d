/root/repo/target/release/deps/geoblock_simtest-7ac1357a65c5046f.d: crates/simtest/src/lib.rs crates/simtest/src/invariants.rs crates/simtest/src/nondet.rs crates/simtest/src/scenario.rs crates/simtest/src/sharded.rs crates/simtest/src/shrink.rs crates/simtest/src/sweep.rs crates/simtest/src/trace.rs

/root/repo/target/release/deps/libgeoblock_simtest-7ac1357a65c5046f.rlib: crates/simtest/src/lib.rs crates/simtest/src/invariants.rs crates/simtest/src/nondet.rs crates/simtest/src/scenario.rs crates/simtest/src/sharded.rs crates/simtest/src/shrink.rs crates/simtest/src/sweep.rs crates/simtest/src/trace.rs

/root/repo/target/release/deps/libgeoblock_simtest-7ac1357a65c5046f.rmeta: crates/simtest/src/lib.rs crates/simtest/src/invariants.rs crates/simtest/src/nondet.rs crates/simtest/src/scenario.rs crates/simtest/src/sharded.rs crates/simtest/src/shrink.rs crates/simtest/src/sweep.rs crates/simtest/src/trace.rs

crates/simtest/src/lib.rs:
crates/simtest/src/invariants.rs:
crates/simtest/src/nondet.rs:
crates/simtest/src/scenario.rs:
crates/simtest/src/sharded.rs:
crates/simtest/src/shrink.rs:
crates/simtest/src/sweep.rs:
crates/simtest/src/trace.rs:
