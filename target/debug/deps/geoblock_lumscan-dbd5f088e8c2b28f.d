/root/repo/target/debug/deps/geoblock_lumscan-dbd5f088e8c2b28f.d: crates/lumscan/src/lib.rs crates/lumscan/src/engine.rs crates/lumscan/src/result.rs crates/lumscan/src/retry.rs crates/lumscan/src/session.rs crates/lumscan/src/stream.rs crates/lumscan/src/transport.rs

/root/repo/target/debug/deps/libgeoblock_lumscan-dbd5f088e8c2b28f.rmeta: crates/lumscan/src/lib.rs crates/lumscan/src/engine.rs crates/lumscan/src/result.rs crates/lumscan/src/retry.rs crates/lumscan/src/session.rs crates/lumscan/src/stream.rs crates/lumscan/src/transport.rs

crates/lumscan/src/lib.rs:
crates/lumscan/src/engine.rs:
crates/lumscan/src/result.rs:
crates/lumscan/src/retry.rs:
crates/lumscan/src/session.rs:
crates/lumscan/src/stream.rs:
crates/lumscan/src/transport.rs:
