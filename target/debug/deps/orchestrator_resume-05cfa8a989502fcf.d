/root/repo/target/debug/deps/orchestrator_resume-05cfa8a989502fcf.d: tests/orchestrator_resume.rs

/root/repo/target/debug/deps/liborchestrator_resume-05cfa8a989502fcf.rmeta: tests/orchestrator_resume.rs

tests/orchestrator_resume.rs:

# env-dep:CARGO_TARGET_TMPDIR=/root/repo/target/tmp
