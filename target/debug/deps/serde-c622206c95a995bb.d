/root/repo/target/debug/deps/serde-c622206c95a995bb.d: /tmp/stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-c622206c95a995bb.rmeta: /tmp/stubs/serde/src/lib.rs

/tmp/stubs/serde/src/lib.rs:
