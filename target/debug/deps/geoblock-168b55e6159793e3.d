/root/repo/target/debug/deps/geoblock-168b55e6159793e3.d: src/lib.rs

/root/repo/target/debug/deps/libgeoblock-168b55e6159793e3.rmeta: src/lib.rs

src/lib.rs:
