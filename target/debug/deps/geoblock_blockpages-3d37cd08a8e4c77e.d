/root/repo/target/debug/deps/geoblock_blockpages-3d37cd08a8e4c77e.d: crates/blockpages/src/lib.rs crates/blockpages/src/fingerprints.rs crates/blockpages/src/kind.rs crates/blockpages/src/provider.rs crates/blockpages/src/templates.rs

/root/repo/target/debug/deps/libgeoblock_blockpages-3d37cd08a8e4c77e.rlib: crates/blockpages/src/lib.rs crates/blockpages/src/fingerprints.rs crates/blockpages/src/kind.rs crates/blockpages/src/provider.rs crates/blockpages/src/templates.rs

/root/repo/target/debug/deps/libgeoblock_blockpages-3d37cd08a8e4c77e.rmeta: crates/blockpages/src/lib.rs crates/blockpages/src/fingerprints.rs crates/blockpages/src/kind.rs crates/blockpages/src/provider.rs crates/blockpages/src/templates.rs

crates/blockpages/src/lib.rs:
crates/blockpages/src/fingerprints.rs:
crates/blockpages/src/kind.rs:
crates/blockpages/src/provider.rs:
crates/blockpages/src/templates.rs:
