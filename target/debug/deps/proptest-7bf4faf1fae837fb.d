/root/repo/target/debug/deps/proptest-7bf4faf1fae837fb.d: /tmp/stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-7bf4faf1fae837fb.rmeta: /tmp/stubs/proptest/src/lib.rs

/tmp/stubs/proptest/src/lib.rs:
