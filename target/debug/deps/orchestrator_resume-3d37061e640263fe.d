/root/repo/target/debug/deps/orchestrator_resume-3d37061e640263fe.d: tests/orchestrator_resume.rs

/root/repo/target/debug/deps/orchestrator_resume-3d37061e640263fe: tests/orchestrator_resume.rs

tests/orchestrator_resume.rs:

# env-dep:CARGO_TARGET_TMPDIR=/root/repo/target/tmp
