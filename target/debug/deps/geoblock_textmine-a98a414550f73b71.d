/root/repo/target/debug/deps/geoblock_textmine-a98a414550f73b71.d: crates/textmine/src/lib.rs crates/textmine/src/cluster.rs crates/textmine/src/ngrams.rs crates/textmine/src/sparse.rs crates/textmine/src/tfidf.rs crates/textmine/src/tokenize.rs

/root/repo/target/debug/deps/libgeoblock_textmine-a98a414550f73b71.rmeta: crates/textmine/src/lib.rs crates/textmine/src/cluster.rs crates/textmine/src/ngrams.rs crates/textmine/src/sparse.rs crates/textmine/src/tfidf.rs crates/textmine/src/tokenize.rs

crates/textmine/src/lib.rs:
crates/textmine/src/cluster.rs:
crates/textmine/src/ngrams.rs:
crates/textmine/src/sparse.rs:
crates/textmine/src/tfidf.rs:
crates/textmine/src/tokenize.rs:
