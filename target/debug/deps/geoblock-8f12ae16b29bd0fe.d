/root/repo/target/debug/deps/geoblock-8f12ae16b29bd0fe.d: src/lib.rs

/root/repo/target/debug/deps/geoblock-8f12ae16b29bd0fe: src/lib.rs

src/lib.rs:
