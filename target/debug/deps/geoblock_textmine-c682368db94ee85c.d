/root/repo/target/debug/deps/geoblock_textmine-c682368db94ee85c.d: crates/textmine/src/lib.rs crates/textmine/src/cluster.rs crates/textmine/src/ngrams.rs crates/textmine/src/sparse.rs crates/textmine/src/tfidf.rs crates/textmine/src/tokenize.rs

/root/repo/target/debug/deps/libgeoblock_textmine-c682368db94ee85c.rmeta: crates/textmine/src/lib.rs crates/textmine/src/cluster.rs crates/textmine/src/ngrams.rs crates/textmine/src/sparse.rs crates/textmine/src/tfidf.rs crates/textmine/src/tokenize.rs

crates/textmine/src/lib.rs:
crates/textmine/src/cluster.rs:
crates/textmine/src/ngrams.rs:
crates/textmine/src/sparse.rs:
crates/textmine/src/tfidf.rs:
crates/textmine/src/tokenize.rs:
