/root/repo/target/debug/deps/longitudinal_diff-73df6cb7e9691b66.d: tests/longitudinal_diff.rs

/root/repo/target/debug/deps/longitudinal_diff-73df6cb7e9691b66: tests/longitudinal_diff.rs

tests/longitudinal_diff.rs:
