/root/repo/target/debug/deps/geoblock-7768bfe706f910e1.d: src/lib.rs

/root/repo/target/debug/deps/libgeoblock-7768bfe706f910e1.rmeta: src/lib.rs

src/lib.rs:
