/root/repo/target/debug/deps/geoblock-85afe3eb3bf0cbc7.d: src/bin/geoblock.rs

/root/repo/target/debug/deps/geoblock-85afe3eb3bf0cbc7: src/bin/geoblock.rs

src/bin/geoblock.rs:
