/root/repo/target/debug/deps/special_domains-e1b0ef801e40ae87.d: tests/special_domains.rs

/root/repo/target/debug/deps/libspecial_domains-e1b0ef801e40ae87.rmeta: tests/special_domains.rs

tests/special_domains.rs:
