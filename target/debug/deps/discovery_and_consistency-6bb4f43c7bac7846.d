/root/repo/target/debug/deps/discovery_and_consistency-6bb4f43c7bac7846.d: tests/discovery_and_consistency.rs

/root/repo/target/debug/deps/libdiscovery_and_consistency-6bb4f43c7bac7846.rmeta: tests/discovery_and_consistency.rs

tests/discovery_and_consistency.rs:
