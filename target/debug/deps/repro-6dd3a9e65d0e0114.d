/root/repo/target/debug/deps/repro-6dd3a9e65d0e0114.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/librepro-6dd3a9e65d0e0114.rmeta: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
