/root/repo/target/debug/deps/plan_proptests-e6aaec72e40e1d1b.d: crates/core/tests/plan_proptests.rs

/root/repo/target/debug/deps/libplan_proptests-e6aaec72e40e1d1b.rmeta: crates/core/tests/plan_proptests.rs

crates/core/tests/plan_proptests.rs:
