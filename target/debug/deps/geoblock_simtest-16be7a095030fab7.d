/root/repo/target/debug/deps/geoblock_simtest-16be7a095030fab7.d: crates/simtest/src/lib.rs crates/simtest/src/invariants.rs crates/simtest/src/nondet.rs crates/simtest/src/scenario.rs crates/simtest/src/shrink.rs crates/simtest/src/sweep.rs crates/simtest/src/trace.rs

/root/repo/target/debug/deps/libgeoblock_simtest-16be7a095030fab7.rmeta: crates/simtest/src/lib.rs crates/simtest/src/invariants.rs crates/simtest/src/nondet.rs crates/simtest/src/scenario.rs crates/simtest/src/shrink.rs crates/simtest/src/sweep.rs crates/simtest/src/trace.rs

crates/simtest/src/lib.rs:
crates/simtest/src/invariants.rs:
crates/simtest/src/nondet.rs:
crates/simtest/src/scenario.rs:
crates/simtest/src/shrink.rs:
crates/simtest/src/sweep.rs:
crates/simtest/src/trace.rs:
