/root/repo/target/debug/deps/tables-84fb98bf61e42b7e.d: crates/bench/benches/tables.rs

/root/repo/target/debug/deps/libtables-84fb98bf61e42b7e.rmeta: crates/bench/benches/tables.rs

crates/bench/benches/tables.rs:
