/root/repo/target/debug/deps/geoblock_blockpages-cfaebe8305793b4f.d: crates/blockpages/src/lib.rs crates/blockpages/src/fingerprints.rs crates/blockpages/src/kind.rs crates/blockpages/src/provider.rs crates/blockpages/src/templates.rs

/root/repo/target/debug/deps/libgeoblock_blockpages-cfaebe8305793b4f.rmeta: crates/blockpages/src/lib.rs crates/blockpages/src/fingerprints.rs crates/blockpages/src/kind.rs crates/blockpages/src/provider.rs crates/blockpages/src/templates.rs

crates/blockpages/src/lib.rs:
crates/blockpages/src/fingerprints.rs:
crates/blockpages/src/kind.rs:
crates/blockpages/src/provider.rs:
crates/blockpages/src/templates.rs:
