/root/repo/target/debug/deps/serde_json-b81c3e1d6afbe67c.d: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-b81c3e1d6afbe67c.rmeta: /tmp/stubs/serde_json/src/lib.rs

/tmp/stubs/serde_json/src/lib.rs:
