/root/repo/target/debug/deps/simtest_dst-ed2952e2424bf930.d: tests/simtest_dst.rs

/root/repo/target/debug/deps/libsimtest_dst-ed2952e2424bf930.rmeta: tests/simtest_dst.rs

tests/simtest_dst.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
# env-dep:CARGO_TARGET_TMPDIR=/root/repo/target/tmp
