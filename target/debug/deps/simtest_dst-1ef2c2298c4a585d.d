/root/repo/target/debug/deps/simtest_dst-1ef2c2298c4a585d.d: tests/simtest_dst.rs

/root/repo/target/debug/deps/simtest_dst-1ef2c2298c4a585d: tests/simtest_dst.rs

tests/simtest_dst.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
# env-dep:CARGO_TARGET_TMPDIR=/root/repo/target/tmp
