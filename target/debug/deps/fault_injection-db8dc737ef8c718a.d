/root/repo/target/debug/deps/fault_injection-db8dc737ef8c718a.d: tests/fault_injection.rs

/root/repo/target/debug/deps/fault_injection-db8dc737ef8c718a: tests/fault_injection.rs

tests/fault_injection.rs:
