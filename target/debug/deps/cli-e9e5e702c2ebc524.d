/root/repo/target/debug/deps/cli-e9e5e702c2ebc524.d: tests/cli.rs

/root/repo/target/debug/deps/libcli-e9e5e702c2ebc524.rmeta: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_geoblock=placeholder:geoblock
