/root/repo/target/debug/deps/geoblock_blockpages-95402571a8aede2d.d: crates/blockpages/src/lib.rs crates/blockpages/src/fingerprints.rs crates/blockpages/src/kind.rs crates/blockpages/src/provider.rs crates/blockpages/src/templates.rs

/root/repo/target/debug/deps/libgeoblock_blockpages-95402571a8aede2d.rmeta: crates/blockpages/src/lib.rs crates/blockpages/src/fingerprints.rs crates/blockpages/src/kind.rs crates/blockpages/src/provider.rs crates/blockpages/src/templates.rs

crates/blockpages/src/lib.rs:
crates/blockpages/src/fingerprints.rs:
crates/blockpages/src/kind.rs:
crates/blockpages/src/provider.rs:
crates/blockpages/src/templates.rs:
