/root/repo/target/debug/deps/simtest_dst-0af33ede826035c7.d: tests/simtest_dst.rs

/root/repo/target/debug/deps/libsimtest_dst-0af33ede826035c7.rmeta: tests/simtest_dst.rs

tests/simtest_dst.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
# env-dep:CARGO_TARGET_TMPDIR=/root/repo/target/tmp
