/root/repo/target/debug/deps/ground_truth_datasets-f78e9db068d47f41.d: tests/ground_truth_datasets.rs

/root/repo/target/debug/deps/libground_truth_datasets-f78e9db068d47f41.rmeta: tests/ground_truth_datasets.rs

tests/ground_truth_datasets.rs:
