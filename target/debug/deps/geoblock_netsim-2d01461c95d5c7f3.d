/root/repo/target/debug/deps/geoblock_netsim-2d01461c95d5c7f3.d: crates/netsim/src/lib.rs crates/netsim/src/censor.rs crates/netsim/src/clock.rs crates/netsim/src/dns.rs crates/netsim/src/edge.rs crates/netsim/src/geoip.rs crates/netsim/src/net.rs crates/netsim/src/origin.rs crates/netsim/src/vps.rs

/root/repo/target/debug/deps/libgeoblock_netsim-2d01461c95d5c7f3.rlib: crates/netsim/src/lib.rs crates/netsim/src/censor.rs crates/netsim/src/clock.rs crates/netsim/src/dns.rs crates/netsim/src/edge.rs crates/netsim/src/geoip.rs crates/netsim/src/net.rs crates/netsim/src/origin.rs crates/netsim/src/vps.rs

/root/repo/target/debug/deps/libgeoblock_netsim-2d01461c95d5c7f3.rmeta: crates/netsim/src/lib.rs crates/netsim/src/censor.rs crates/netsim/src/clock.rs crates/netsim/src/dns.rs crates/netsim/src/edge.rs crates/netsim/src/geoip.rs crates/netsim/src/net.rs crates/netsim/src/origin.rs crates/netsim/src/vps.rs

crates/netsim/src/lib.rs:
crates/netsim/src/censor.rs:
crates/netsim/src/clock.rs:
crates/netsim/src/dns.rs:
crates/netsim/src/edge.rs:
crates/netsim/src/geoip.rs:
crates/netsim/src/net.rs:
crates/netsim/src/origin.rs:
crates/netsim/src/vps.rs:
