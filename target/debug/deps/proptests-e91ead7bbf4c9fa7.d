/root/repo/target/debug/deps/proptests-e91ead7bbf4c9fa7.d: crates/core/tests/proptests.rs

/root/repo/target/debug/deps/libproptests-e91ead7bbf4c9fa7.rmeta: crates/core/tests/proptests.rs

crates/core/tests/proptests.rs:
