/root/repo/target/debug/deps/geoblock_proxynet-d17fe7413bdbbc5b.d: crates/proxynet/src/lib.rs crates/proxynet/src/exits.rs crates/proxynet/src/faults.rs crates/proxynet/src/network.rs

/root/repo/target/debug/deps/libgeoblock_proxynet-d17fe7413bdbbc5b.rmeta: crates/proxynet/src/lib.rs crates/proxynet/src/exits.rs crates/proxynet/src/faults.rs crates/proxynet/src/network.rs

crates/proxynet/src/lib.rs:
crates/proxynet/src/exits.rs:
crates/proxynet/src/faults.rs:
crates/proxynet/src/network.rs:
