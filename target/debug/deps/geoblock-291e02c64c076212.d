/root/repo/target/debug/deps/geoblock-291e02c64c076212.d: src/bin/geoblock.rs

/root/repo/target/debug/deps/libgeoblock-291e02c64c076212.rmeta: src/bin/geoblock.rs

src/bin/geoblock.rs:
