/root/repo/target/debug/deps/longitudinal_diff-3027eaf77b51793b.d: tests/longitudinal_diff.rs

/root/repo/target/debug/deps/liblongitudinal_diff-3027eaf77b51793b.rmeta: tests/longitudinal_diff.rs

tests/longitudinal_diff.rs:
