/root/repo/target/debug/deps/geoblock-cd267276a857a190.d: src/bin/geoblock.rs

/root/repo/target/debug/deps/libgeoblock-cd267276a857a190.rmeta: src/bin/geoblock.rs

src/bin/geoblock.rs:
