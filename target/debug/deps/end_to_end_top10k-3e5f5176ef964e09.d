/root/repo/target/debug/deps/end_to_end_top10k-3e5f5176ef964e09.d: tests/end_to_end_top10k.rs

/root/repo/target/debug/deps/libend_to_end_top10k-3e5f5176ef964e09.rmeta: tests/end_to_end_top10k.rs

tests/end_to_end_top10k.rs:
