/root/repo/target/debug/deps/repro-5ae321b6f74c3b37.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/librepro-5ae321b6f74c3b37.rmeta: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
