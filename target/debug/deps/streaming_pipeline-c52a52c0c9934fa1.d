/root/repo/target/debug/deps/streaming_pipeline-c52a52c0c9934fa1.d: tests/streaming_pipeline.rs

/root/repo/target/debug/deps/libstreaming_pipeline-c52a52c0c9934fa1.rmeta: tests/streaming_pipeline.rs

tests/streaming_pipeline.rs:
