/root/repo/target/debug/deps/geoblock-59dda5e6f88f6a22.d: src/bin/geoblock.rs

/root/repo/target/debug/deps/libgeoblock-59dda5e6f88f6a22.rmeta: src/bin/geoblock.rs

src/bin/geoblock.rs:
