/root/repo/target/debug/deps/geoblock_bench-026264b805796fb4.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libgeoblock_bench-026264b805796fb4.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/report.rs:
