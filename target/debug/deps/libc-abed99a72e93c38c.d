/root/repo/target/debug/deps/libc-abed99a72e93c38c.d: /tmp/stubs/libc/src/lib.rs

/root/repo/target/debug/deps/liblibc-abed99a72e93c38c.rmeta: /tmp/stubs/libc/src/lib.rs

/tmp/stubs/libc/src/lib.rs:
