/root/repo/target/debug/deps/geoblock_orchestrator-b5a4cba07e3657d0.d: crates/orchestrator/src/lib.rs crates/orchestrator/src/checkpoint.rs crates/orchestrator/src/orchestrator.rs crates/orchestrator/src/record.rs crates/orchestrator/src/shard.rs

/root/repo/target/debug/deps/libgeoblock_orchestrator-b5a4cba07e3657d0.rmeta: crates/orchestrator/src/lib.rs crates/orchestrator/src/checkpoint.rs crates/orchestrator/src/orchestrator.rs crates/orchestrator/src/record.rs crates/orchestrator/src/shard.rs

crates/orchestrator/src/lib.rs:
crates/orchestrator/src/checkpoint.rs:
crates/orchestrator/src/orchestrator.rs:
crates/orchestrator/src/record.rs:
crates/orchestrator/src/shard.rs:
