/root/repo/target/debug/deps/proptests-7ca90e7dd7a3f674.d: crates/analysis/tests/proptests.rs

/root/repo/target/debug/deps/libproptests-7ca90e7dd7a3f674.rmeta: crates/analysis/tests/proptests.rs

crates/analysis/tests/proptests.rs:
