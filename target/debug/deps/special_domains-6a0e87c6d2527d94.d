/root/repo/target/debug/deps/special_domains-6a0e87c6d2527d94.d: tests/special_domains.rs

/root/repo/target/debug/deps/libspecial_domains-6a0e87c6d2527d94.rmeta: tests/special_domains.rs

tests/special_domains.rs:
