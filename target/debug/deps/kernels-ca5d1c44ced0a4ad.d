/root/repo/target/debug/deps/kernels-ca5d1c44ced0a4ad.d: crates/bench/benches/kernels.rs

/root/repo/target/debug/deps/libkernels-ca5d1c44ced0a4ad.rmeta: crates/bench/benches/kernels.rs

crates/bench/benches/kernels.rs:
