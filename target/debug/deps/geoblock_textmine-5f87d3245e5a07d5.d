/root/repo/target/debug/deps/geoblock_textmine-5f87d3245e5a07d5.d: crates/textmine/src/lib.rs crates/textmine/src/cluster.rs crates/textmine/src/ngrams.rs crates/textmine/src/sparse.rs crates/textmine/src/tfidf.rs crates/textmine/src/tokenize.rs

/root/repo/target/debug/deps/libgeoblock_textmine-5f87d3245e5a07d5.rlib: crates/textmine/src/lib.rs crates/textmine/src/cluster.rs crates/textmine/src/ngrams.rs crates/textmine/src/sparse.rs crates/textmine/src/tfidf.rs crates/textmine/src/tokenize.rs

/root/repo/target/debug/deps/libgeoblock_textmine-5f87d3245e5a07d5.rmeta: crates/textmine/src/lib.rs crates/textmine/src/cluster.rs crates/textmine/src/ngrams.rs crates/textmine/src/sparse.rs crates/textmine/src/tfidf.rs crates/textmine/src/tokenize.rs

crates/textmine/src/lib.rs:
crates/textmine/src/cluster.rs:
crates/textmine/src/ngrams.rs:
crates/textmine/src/sparse.rs:
crates/textmine/src/tfidf.rs:
crates/textmine/src/tokenize.rs:
