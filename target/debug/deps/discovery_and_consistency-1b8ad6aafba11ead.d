/root/repo/target/debug/deps/discovery_and_consistency-1b8ad6aafba11ead.d: tests/discovery_and_consistency.rs

/root/repo/target/debug/deps/discovery_and_consistency-1b8ad6aafba11ead: tests/discovery_and_consistency.rs

tests/discovery_and_consistency.rs:
