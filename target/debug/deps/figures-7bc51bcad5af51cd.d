/root/repo/target/debug/deps/figures-7bc51bcad5af51cd.d: crates/bench/benches/figures.rs

/root/repo/target/debug/deps/libfigures-7bc51bcad5af51cd.rmeta: crates/bench/benches/figures.rs

crates/bench/benches/figures.rs:
