/root/repo/target/debug/deps/geoblock_bench-8296d237291a50ad.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libgeoblock_bench-8296d237291a50ad.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libgeoblock_bench-8296d237291a50ad.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/report.rs:
