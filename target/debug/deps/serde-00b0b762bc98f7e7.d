/root/repo/target/debug/deps/serde-00b0b762bc98f7e7.d: /tmp/stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-00b0b762bc98f7e7.rlib: /tmp/stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-00b0b762bc98f7e7.rmeta: /tmp/stubs/serde/src/lib.rs

/tmp/stubs/serde/src/lib.rs:
