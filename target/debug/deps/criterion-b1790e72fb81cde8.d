/root/repo/target/debug/deps/criterion-b1790e72fb81cde8.d: /tmp/stubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-b1790e72fb81cde8.rmeta: /tmp/stubs/criterion/src/lib.rs

/tmp/stubs/criterion/src/lib.rs:
