/root/repo/target/debug/deps/tokio-3990681cc2881887.d: /tmp/stubs/tokio/src/lib.rs

/root/repo/target/debug/deps/libtokio-3990681cc2881887.rmeta: /tmp/stubs/tokio/src/lib.rs

/tmp/stubs/tokio/src/lib.rs:
