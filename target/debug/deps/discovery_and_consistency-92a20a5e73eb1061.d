/root/repo/target/debug/deps/discovery_and_consistency-92a20a5e73eb1061.d: tests/discovery_and_consistency.rs

/root/repo/target/debug/deps/libdiscovery_and_consistency-92a20a5e73eb1061.rmeta: tests/discovery_and_consistency.rs

tests/discovery_and_consistency.rs:
