/root/repo/target/debug/deps/geoblock-b15f1d68217a5bd4.d: src/bin/geoblock.rs

/root/repo/target/debug/deps/libgeoblock-b15f1d68217a5bd4.rmeta: src/bin/geoblock.rs

src/bin/geoblock.rs:
