/root/repo/target/debug/deps/rand-92f1756c67e8fb5e.d: /tmp/stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-92f1756c67e8fb5e.rmeta: /tmp/stubs/rand/src/lib.rs

/tmp/stubs/rand/src/lib.rs:
