/root/repo/target/debug/deps/tokio_macros-86d2fcf4b336855f.d: /tmp/stubs/tokio-macros/src/lib.rs

/root/repo/target/debug/deps/libtokio_macros-86d2fcf4b336855f.so: /tmp/stubs/tokio-macros/src/lib.rs

/tmp/stubs/tokio-macros/src/lib.rs:
