/root/repo/target/debug/deps/table_pinning-a4e215d2b5b26631.d: crates/blockpages/tests/table_pinning.rs

/root/repo/target/debug/deps/libtable_pinning-a4e215d2b5b26631.rmeta: crates/blockpages/tests/table_pinning.rs

crates/blockpages/tests/table_pinning.rs:
