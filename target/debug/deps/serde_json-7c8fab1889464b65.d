/root/repo/target/debug/deps/serde_json-7c8fab1889464b65.d: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-7c8fab1889464b65.rlib: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-7c8fab1889464b65.rmeta: /tmp/stubs/serde_json/src/lib.rs

/tmp/stubs/serde_json/src/lib.rs:
