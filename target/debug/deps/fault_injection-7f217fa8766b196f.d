/root/repo/target/debug/deps/fault_injection-7f217fa8766b196f.d: tests/fault_injection.rs

/root/repo/target/debug/deps/libfault_injection-7f217fa8766b196f.rmeta: tests/fault_injection.rs

tests/fault_injection.rs:
