/root/repo/target/debug/deps/ground_truth_datasets-8abf59e22fef6af4.d: tests/ground_truth_datasets.rs

/root/repo/target/debug/deps/ground_truth_datasets-8abf59e22fef6af4: tests/ground_truth_datasets.rs

tests/ground_truth_datasets.rs:
