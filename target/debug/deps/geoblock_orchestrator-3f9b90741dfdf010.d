/root/repo/target/debug/deps/geoblock_orchestrator-3f9b90741dfdf010.d: crates/orchestrator/src/lib.rs crates/orchestrator/src/checkpoint.rs crates/orchestrator/src/orchestrator.rs crates/orchestrator/src/record.rs crates/orchestrator/src/shard.rs

/root/repo/target/debug/deps/libgeoblock_orchestrator-3f9b90741dfdf010.rlib: crates/orchestrator/src/lib.rs crates/orchestrator/src/checkpoint.rs crates/orchestrator/src/orchestrator.rs crates/orchestrator/src/record.rs crates/orchestrator/src/shard.rs

/root/repo/target/debug/deps/libgeoblock_orchestrator-3f9b90741dfdf010.rmeta: crates/orchestrator/src/lib.rs crates/orchestrator/src/checkpoint.rs crates/orchestrator/src/orchestrator.rs crates/orchestrator/src/record.rs crates/orchestrator/src/shard.rs

crates/orchestrator/src/lib.rs:
crates/orchestrator/src/checkpoint.rs:
crates/orchestrator/src/orchestrator.rs:
crates/orchestrator/src/record.rs:
crates/orchestrator/src/shard.rs:
