/root/repo/target/debug/deps/ablations-d6822950db92ef8b.d: crates/bench/benches/ablations.rs

/root/repo/target/debug/deps/libablations-d6822950db92ef8b.rmeta: crates/bench/benches/ablations.rs

crates/bench/benches/ablations.rs:
