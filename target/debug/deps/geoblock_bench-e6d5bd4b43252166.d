/root/repo/target/debug/deps/geoblock_bench-e6d5bd4b43252166.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libgeoblock_bench-e6d5bd4b43252166.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/report.rs:
