/root/repo/target/debug/deps/rand-b5dd76371a92760d.d: /tmp/stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-b5dd76371a92760d.rlib: /tmp/stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-b5dd76371a92760d.rmeta: /tmp/stubs/rand/src/lib.rs

/tmp/stubs/rand/src/lib.rs:
