/root/repo/target/debug/deps/geoblock_worldgen-cae68d829bf9b3ab.d: crates/worldgen/src/lib.rs crates/worldgen/src/category.rs crates/worldgen/src/citizenlab.rs crates/worldgen/src/cloudflare_rules.rs crates/worldgen/src/country.rs crates/worldgen/src/domains.rs crates/worldgen/src/ooni.rs crates/worldgen/src/policy.rs crates/worldgen/src/special.rs crates/worldgen/src/world.rs

/root/repo/target/debug/deps/libgeoblock_worldgen-cae68d829bf9b3ab.rmeta: crates/worldgen/src/lib.rs crates/worldgen/src/category.rs crates/worldgen/src/citizenlab.rs crates/worldgen/src/cloudflare_rules.rs crates/worldgen/src/country.rs crates/worldgen/src/domains.rs crates/worldgen/src/ooni.rs crates/worldgen/src/policy.rs crates/worldgen/src/special.rs crates/worldgen/src/world.rs

crates/worldgen/src/lib.rs:
crates/worldgen/src/category.rs:
crates/worldgen/src/citizenlab.rs:
crates/worldgen/src/cloudflare_rules.rs:
crates/worldgen/src/country.rs:
crates/worldgen/src/domains.rs:
crates/worldgen/src/ooni.rs:
crates/worldgen/src/policy.rs:
crates/worldgen/src/special.rs:
crates/worldgen/src/world.rs:
