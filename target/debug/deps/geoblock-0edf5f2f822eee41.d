/root/repo/target/debug/deps/geoblock-0edf5f2f822eee41.d: src/lib.rs

/root/repo/target/debug/deps/libgeoblock-0edf5f2f822eee41.rmeta: src/lib.rs

src/lib.rs:
