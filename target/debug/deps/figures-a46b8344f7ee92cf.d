/root/repo/target/debug/deps/figures-a46b8344f7ee92cf.d: crates/bench/benches/figures.rs

/root/repo/target/debug/deps/libfigures-a46b8344f7ee92cf.rmeta: crates/bench/benches/figures.rs

crates/bench/benches/figures.rs:
