/root/repo/target/debug/deps/geoblock_orchestrator-0d21d85ec1e417ae.d: crates/orchestrator/src/lib.rs crates/orchestrator/src/checkpoint.rs crates/orchestrator/src/orchestrator.rs crates/orchestrator/src/record.rs crates/orchestrator/src/shard.rs

/root/repo/target/debug/deps/geoblock_orchestrator-0d21d85ec1e417ae: crates/orchestrator/src/lib.rs crates/orchestrator/src/checkpoint.rs crates/orchestrator/src/orchestrator.rs crates/orchestrator/src/record.rs crates/orchestrator/src/shard.rs

crates/orchestrator/src/lib.rs:
crates/orchestrator/src/checkpoint.rs:
crates/orchestrator/src/orchestrator.rs:
crates/orchestrator/src/record.rs:
crates/orchestrator/src/shard.rs:
