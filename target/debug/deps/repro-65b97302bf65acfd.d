/root/repo/target/debug/deps/repro-65b97302bf65acfd.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/librepro-65b97302bf65acfd.rmeta: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
