/root/repo/target/debug/deps/fault_injection-4ce9bcf938bc2dbb.d: tests/fault_injection.rs

/root/repo/target/debug/deps/libfault_injection-4ce9bcf938bc2dbb.rmeta: tests/fault_injection.rs

tests/fault_injection.rs:
