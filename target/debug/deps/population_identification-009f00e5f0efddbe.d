/root/repo/target/debug/deps/population_identification-009f00e5f0efddbe.d: tests/population_identification.rs

/root/repo/target/debug/deps/libpopulation_identification-009f00e5f0efddbe.rmeta: tests/population_identification.rs

tests/population_identification.rs:
