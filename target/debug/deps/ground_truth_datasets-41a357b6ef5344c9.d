/root/repo/target/debug/deps/ground_truth_datasets-41a357b6ef5344c9.d: tests/ground_truth_datasets.rs

/root/repo/target/debug/deps/libground_truth_datasets-41a357b6ef5344c9.rmeta: tests/ground_truth_datasets.rs

tests/ground_truth_datasets.rs:
