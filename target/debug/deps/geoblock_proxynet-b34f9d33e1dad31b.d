/root/repo/target/debug/deps/geoblock_proxynet-b34f9d33e1dad31b.d: crates/proxynet/src/lib.rs crates/proxynet/src/exits.rs crates/proxynet/src/faults.rs crates/proxynet/src/network.rs

/root/repo/target/debug/deps/libgeoblock_proxynet-b34f9d33e1dad31b.rmeta: crates/proxynet/src/lib.rs crates/proxynet/src/exits.rs crates/proxynet/src/faults.rs crates/proxynet/src/network.rs

crates/proxynet/src/lib.rs:
crates/proxynet/src/exits.rs:
crates/proxynet/src/faults.rs:
crates/proxynet/src/network.rs:
