/root/repo/target/debug/deps/geoblock_bench-4fb986069e928bcf.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libgeoblock_bench-4fb986069e928bcf.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/report.rs:
