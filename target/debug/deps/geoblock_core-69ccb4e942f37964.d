/root/repo/target/debug/deps/geoblock_core-69ccb4e942f37964.d: crates/core/src/lib.rs crates/core/src/classify.rs crates/core/src/confirm.rs crates/core/src/consistency.rs crates/core/src/diffing.rs crates/core/src/discovery.rs crates/core/src/exploration.rs crates/core/src/observation.rs crates/core/src/outliers.rs crates/core/src/plan.rs crates/core/src/population.rs crates/core/src/regional.rs crates/core/src/study.rs crates/core/src/timeouts.rs

/root/repo/target/debug/deps/libgeoblock_core-69ccb4e942f37964.rmeta: crates/core/src/lib.rs crates/core/src/classify.rs crates/core/src/confirm.rs crates/core/src/consistency.rs crates/core/src/diffing.rs crates/core/src/discovery.rs crates/core/src/exploration.rs crates/core/src/observation.rs crates/core/src/outliers.rs crates/core/src/plan.rs crates/core/src/population.rs crates/core/src/regional.rs crates/core/src/study.rs crates/core/src/timeouts.rs

crates/core/src/lib.rs:
crates/core/src/classify.rs:
crates/core/src/confirm.rs:
crates/core/src/consistency.rs:
crates/core/src/diffing.rs:
crates/core/src/discovery.rs:
crates/core/src/exploration.rs:
crates/core/src/observation.rs:
crates/core/src/outliers.rs:
crates/core/src/plan.rs:
crates/core/src/population.rs:
crates/core/src/regional.rs:
crates/core/src/study.rs:
crates/core/src/timeouts.rs:
