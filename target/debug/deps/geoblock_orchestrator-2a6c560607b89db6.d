/root/repo/target/debug/deps/geoblock_orchestrator-2a6c560607b89db6.d: crates/orchestrator/src/lib.rs crates/orchestrator/src/checkpoint.rs crates/orchestrator/src/orchestrator.rs crates/orchestrator/src/record.rs crates/orchestrator/src/shard.rs

/root/repo/target/debug/deps/libgeoblock_orchestrator-2a6c560607b89db6.rmeta: crates/orchestrator/src/lib.rs crates/orchestrator/src/checkpoint.rs crates/orchestrator/src/orchestrator.rs crates/orchestrator/src/record.rs crates/orchestrator/src/shard.rs

crates/orchestrator/src/lib.rs:
crates/orchestrator/src/checkpoint.rs:
crates/orchestrator/src/orchestrator.rs:
crates/orchestrator/src/record.rs:
crates/orchestrator/src/shard.rs:
