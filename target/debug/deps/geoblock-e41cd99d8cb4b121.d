/root/repo/target/debug/deps/geoblock-e41cd99d8cb4b121.d: src/bin/geoblock.rs

/root/repo/target/debug/deps/geoblock-e41cd99d8cb4b121: src/bin/geoblock.rs

src/bin/geoblock.rs:
