/root/repo/target/debug/deps/geoblock_http-65298255b839a5dd.d: crates/http/src/lib.rs crates/http/src/chain.rs crates/http/src/error.rs crates/http/src/headers.rs crates/http/src/method.rs crates/http/src/profile.rs crates/http/src/request.rs crates/http/src/response.rs crates/http/src/status.rs crates/http/src/url.rs crates/http/src/wire.rs

/root/repo/target/debug/deps/libgeoblock_http-65298255b839a5dd.rmeta: crates/http/src/lib.rs crates/http/src/chain.rs crates/http/src/error.rs crates/http/src/headers.rs crates/http/src/method.rs crates/http/src/profile.rs crates/http/src/request.rs crates/http/src/response.rs crates/http/src/status.rs crates/http/src/url.rs crates/http/src/wire.rs

crates/http/src/lib.rs:
crates/http/src/chain.rs:
crates/http/src/error.rs:
crates/http/src/headers.rs:
crates/http/src/method.rs:
crates/http/src/profile.rs:
crates/http/src/request.rs:
crates/http/src/response.rs:
crates/http/src/status.rs:
crates/http/src/url.rs:
crates/http/src/wire.rs:
