/root/repo/target/debug/deps/proptests-e7de943183d95b26.d: crates/http/tests/proptests.rs

/root/repo/target/debug/deps/libproptests-e7de943183d95b26.rmeta: crates/http/tests/proptests.rs

crates/http/tests/proptests.rs:
