/root/repo/target/debug/deps/tokio-bc6248c4ceb70ea6.d: /tmp/stubs/tokio/src/lib.rs

/root/repo/target/debug/deps/libtokio-bc6248c4ceb70ea6.rlib: /tmp/stubs/tokio/src/lib.rs

/root/repo/target/debug/deps/libtokio-bc6248c4ceb70ea6.rmeta: /tmp/stubs/tokio/src/lib.rs

/tmp/stubs/tokio/src/lib.rs:
