/root/repo/target/debug/deps/longitudinal_diff-04a5a323a92da66f.d: tests/longitudinal_diff.rs

/root/repo/target/debug/deps/liblongitudinal_diff-04a5a323a92da66f.rmeta: tests/longitudinal_diff.rs

tests/longitudinal_diff.rs:
