/root/repo/target/debug/deps/geoblock_lumscan-7e6d2bac231a94e5.d: crates/lumscan/src/lib.rs crates/lumscan/src/engine.rs crates/lumscan/src/result.rs crates/lumscan/src/retry.rs crates/lumscan/src/session.rs crates/lumscan/src/stream.rs crates/lumscan/src/transport.rs

/root/repo/target/debug/deps/libgeoblock_lumscan-7e6d2bac231a94e5.rlib: crates/lumscan/src/lib.rs crates/lumscan/src/engine.rs crates/lumscan/src/result.rs crates/lumscan/src/retry.rs crates/lumscan/src/session.rs crates/lumscan/src/stream.rs crates/lumscan/src/transport.rs

/root/repo/target/debug/deps/libgeoblock_lumscan-7e6d2bac231a94e5.rmeta: crates/lumscan/src/lib.rs crates/lumscan/src/engine.rs crates/lumscan/src/result.rs crates/lumscan/src/retry.rs crates/lumscan/src/session.rs crates/lumscan/src/stream.rs crates/lumscan/src/transport.rs

crates/lumscan/src/lib.rs:
crates/lumscan/src/engine.rs:
crates/lumscan/src/result.rs:
crates/lumscan/src/retry.rs:
crates/lumscan/src/session.rs:
crates/lumscan/src/stream.rs:
crates/lumscan/src/transport.rs:
