/root/repo/target/debug/deps/streaming_pipeline-dbff5898cb4aec86.d: tests/streaming_pipeline.rs

/root/repo/target/debug/deps/libstreaming_pipeline-dbff5898cb4aec86.rmeta: tests/streaming_pipeline.rs

tests/streaming_pipeline.rs:
