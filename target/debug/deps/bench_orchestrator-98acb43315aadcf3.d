/root/repo/target/debug/deps/bench_orchestrator-98acb43315aadcf3.d: crates/bench/src/bin/bench_orchestrator.rs

/root/repo/target/debug/deps/libbench_orchestrator-98acb43315aadcf3.rmeta: crates/bench/src/bin/bench_orchestrator.rs

crates/bench/src/bin/bench_orchestrator.rs:
