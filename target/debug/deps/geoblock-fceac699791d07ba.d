/root/repo/target/debug/deps/geoblock-fceac699791d07ba.d: src/lib.rs

/root/repo/target/debug/deps/libgeoblock-fceac699791d07ba.rlib: src/lib.rs

/root/repo/target/debug/deps/libgeoblock-fceac699791d07ba.rmeta: src/lib.rs

src/lib.rs:
