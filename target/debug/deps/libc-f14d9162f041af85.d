/root/repo/target/debug/deps/libc-f14d9162f041af85.d: /tmp/stubs/libc/src/lib.rs

/root/repo/target/debug/deps/liblibc-f14d9162f041af85.rlib: /tmp/stubs/libc/src/lib.rs

/root/repo/target/debug/deps/liblibc-f14d9162f041af85.rmeta: /tmp/stubs/libc/src/lib.rs

/tmp/stubs/libc/src/lib.rs:
