/root/repo/target/debug/deps/kernels-d15d02c9f201e326.d: crates/bench/benches/kernels.rs

/root/repo/target/debug/deps/libkernels-d15d02c9f201e326.rmeta: crates/bench/benches/kernels.rs

crates/bench/benches/kernels.rs:
