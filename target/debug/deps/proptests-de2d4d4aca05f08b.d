/root/repo/target/debug/deps/proptests-de2d4d4aca05f08b.d: crates/textmine/tests/proptests.rs

/root/repo/target/debug/deps/libproptests-de2d4d4aca05f08b.rmeta: crates/textmine/tests/proptests.rs

crates/textmine/tests/proptests.rs:
