/root/repo/target/debug/deps/proptests-a7b51edf78895d57.d: crates/worldgen/tests/proptests.rs

/root/repo/target/debug/deps/libproptests-a7b51edf78895d57.rmeta: crates/worldgen/tests/proptests.rs

crates/worldgen/tests/proptests.rs:
