/root/repo/target/debug/deps/proptest-7b41e77953b159db.d: /tmp/stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-7b41e77953b159db.rlib: /tmp/stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-7b41e77953b159db.rmeta: /tmp/stubs/proptest/src/lib.rs

/tmp/stubs/proptest/src/lib.rs:
