/root/repo/target/debug/deps/special_domains-4dca87ce6fcf15ea.d: tests/special_domains.rs

/root/repo/target/debug/deps/special_domains-4dca87ce6fcf15ea: tests/special_domains.rs

tests/special_domains.rs:
