/root/repo/target/debug/deps/geoblock_proxynet-193b3d203e666dd0.d: crates/proxynet/src/lib.rs crates/proxynet/src/exits.rs crates/proxynet/src/faults.rs crates/proxynet/src/network.rs

/root/repo/target/debug/deps/libgeoblock_proxynet-193b3d203e666dd0.rlib: crates/proxynet/src/lib.rs crates/proxynet/src/exits.rs crates/proxynet/src/faults.rs crates/proxynet/src/network.rs

/root/repo/target/debug/deps/libgeoblock_proxynet-193b3d203e666dd0.rmeta: crates/proxynet/src/lib.rs crates/proxynet/src/exits.rs crates/proxynet/src/faults.rs crates/proxynet/src/network.rs

crates/proxynet/src/lib.rs:
crates/proxynet/src/exits.rs:
crates/proxynet/src/faults.rs:
crates/proxynet/src/network.rs:
