/root/repo/target/debug/deps/tables-8343b8176dcdadec.d: crates/bench/benches/tables.rs

/root/repo/target/debug/deps/libtables-8343b8176dcdadec.rmeta: crates/bench/benches/tables.rs

crates/bench/benches/tables.rs:
