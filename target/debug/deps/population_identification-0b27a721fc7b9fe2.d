/root/repo/target/debug/deps/population_identification-0b27a721fc7b9fe2.d: tests/population_identification.rs

/root/repo/target/debug/deps/population_identification-0b27a721fc7b9fe2: tests/population_identification.rs

tests/population_identification.rs:
