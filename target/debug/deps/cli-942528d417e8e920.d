/root/repo/target/debug/deps/cli-942528d417e8e920.d: tests/cli.rs

/root/repo/target/debug/deps/libcli-942528d417e8e920.rmeta: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_geoblock=placeholder:geoblock
