/root/repo/target/debug/deps/geoblock-72e730eca7df3c09.d: src/lib.rs

/root/repo/target/debug/deps/libgeoblock-72e730eca7df3c09.rmeta: src/lib.rs

src/lib.rs:
