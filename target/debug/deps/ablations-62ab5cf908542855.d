/root/repo/target/debug/deps/ablations-62ab5cf908542855.d: crates/bench/benches/ablations.rs

/root/repo/target/debug/deps/libablations-62ab5cf908542855.rmeta: crates/bench/benches/ablations.rs

crates/bench/benches/ablations.rs:
