/root/repo/target/debug/deps/bench_orchestrator-d289cd6a7337afa1.d: crates/bench/src/bin/bench_orchestrator.rs

/root/repo/target/debug/deps/libbench_orchestrator-d289cd6a7337afa1.rmeta: crates/bench/src/bin/bench_orchestrator.rs

crates/bench/src/bin/bench_orchestrator.rs:
