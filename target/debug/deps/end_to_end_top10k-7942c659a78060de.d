/root/repo/target/debug/deps/end_to_end_top10k-7942c659a78060de.d: tests/end_to_end_top10k.rs

/root/repo/target/debug/deps/end_to_end_top10k-7942c659a78060de: tests/end_to_end_top10k.rs

tests/end_to_end_top10k.rs:
