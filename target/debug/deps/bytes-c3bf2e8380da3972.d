/root/repo/target/debug/deps/bytes-c3bf2e8380da3972.d: /tmp/stubs/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-c3bf2e8380da3972.rmeta: /tmp/stubs/bytes/src/lib.rs

/tmp/stubs/bytes/src/lib.rs:
