/root/repo/target/debug/deps/bench_orchestrator-79f1e6cdc4a187e3.d: crates/bench/src/bin/bench_orchestrator.rs

/root/repo/target/debug/deps/bench_orchestrator-79f1e6cdc4a187e3: crates/bench/src/bin/bench_orchestrator.rs

crates/bench/src/bin/bench_orchestrator.rs:
