/root/repo/target/debug/deps/proptests-27b91d6a330c67c7.d: crates/blockpages/tests/proptests.rs

/root/repo/target/debug/deps/libproptests-27b91d6a330c67c7.rmeta: crates/blockpages/tests/proptests.rs

crates/blockpages/tests/proptests.rs:
