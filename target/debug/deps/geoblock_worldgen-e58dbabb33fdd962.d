/root/repo/target/debug/deps/geoblock_worldgen-e58dbabb33fdd962.d: crates/worldgen/src/lib.rs crates/worldgen/src/category.rs crates/worldgen/src/citizenlab.rs crates/worldgen/src/cloudflare_rules.rs crates/worldgen/src/country.rs crates/worldgen/src/domains.rs crates/worldgen/src/ooni.rs crates/worldgen/src/policy.rs crates/worldgen/src/special.rs crates/worldgen/src/world.rs

/root/repo/target/debug/deps/libgeoblock_worldgen-e58dbabb33fdd962.rlib: crates/worldgen/src/lib.rs crates/worldgen/src/category.rs crates/worldgen/src/citizenlab.rs crates/worldgen/src/cloudflare_rules.rs crates/worldgen/src/country.rs crates/worldgen/src/domains.rs crates/worldgen/src/ooni.rs crates/worldgen/src/policy.rs crates/worldgen/src/special.rs crates/worldgen/src/world.rs

/root/repo/target/debug/deps/libgeoblock_worldgen-e58dbabb33fdd962.rmeta: crates/worldgen/src/lib.rs crates/worldgen/src/category.rs crates/worldgen/src/citizenlab.rs crates/worldgen/src/cloudflare_rules.rs crates/worldgen/src/country.rs crates/worldgen/src/domains.rs crates/worldgen/src/ooni.rs crates/worldgen/src/policy.rs crates/worldgen/src/special.rs crates/worldgen/src/world.rs

crates/worldgen/src/lib.rs:
crates/worldgen/src/category.rs:
crates/worldgen/src/citizenlab.rs:
crates/worldgen/src/cloudflare_rules.rs:
crates/worldgen/src/country.rs:
crates/worldgen/src/domains.rs:
crates/worldgen/src/ooni.rs:
crates/worldgen/src/policy.rs:
crates/worldgen/src/special.rs:
crates/worldgen/src/world.rs:
