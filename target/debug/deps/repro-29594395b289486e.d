/root/repo/target/debug/deps/repro-29594395b289486e.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/librepro-29594395b289486e.rmeta: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
