/root/repo/target/debug/deps/population_identification-7892ceb759f8b10f.d: tests/population_identification.rs

/root/repo/target/debug/deps/libpopulation_identification-7892ceb759f8b10f.rmeta: tests/population_identification.rs

tests/population_identification.rs:
