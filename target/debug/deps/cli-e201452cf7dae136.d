/root/repo/target/debug/deps/cli-e201452cf7dae136.d: tests/cli.rs

/root/repo/target/debug/deps/cli-e201452cf7dae136: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_geoblock=/root/repo/target/debug/geoblock
