/root/repo/target/debug/deps/streaming_pipeline-763ecf572c055576.d: tests/streaming_pipeline.rs

/root/repo/target/debug/deps/streaming_pipeline-763ecf572c055576: tests/streaming_pipeline.rs

tests/streaming_pipeline.rs:
