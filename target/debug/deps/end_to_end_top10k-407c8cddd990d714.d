/root/repo/target/debug/deps/end_to_end_top10k-407c8cddd990d714.d: tests/end_to_end_top10k.rs

/root/repo/target/debug/deps/libend_to_end_top10k-407c8cddd990d714.rmeta: tests/end_to_end_top10k.rs

tests/end_to_end_top10k.rs:
