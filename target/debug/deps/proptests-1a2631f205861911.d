/root/repo/target/debug/deps/proptests-1a2631f205861911.d: crates/netsim/tests/proptests.rs

/root/repo/target/debug/deps/libproptests-1a2631f205861911.rmeta: crates/netsim/tests/proptests.rs

crates/netsim/tests/proptests.rs:
