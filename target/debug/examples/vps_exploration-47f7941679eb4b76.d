/root/repo/target/debug/examples/vps_exploration-47f7941679eb4b76.d: examples/vps_exploration.rs

/root/repo/target/debug/examples/libvps_exploration-47f7941679eb4b76.rmeta: examples/vps_exploration.rs

examples/vps_exploration.rs:
