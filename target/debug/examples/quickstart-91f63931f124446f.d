/root/repo/target/debug/examples/quickstart-91f63931f124446f.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-91f63931f124446f.rmeta: examples/quickstart.rs

examples/quickstart.rs:
