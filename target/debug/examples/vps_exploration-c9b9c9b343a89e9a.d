/root/repo/target/debug/examples/vps_exploration-c9b9c9b343a89e9a.d: examples/vps_exploration.rs

/root/repo/target/debug/examples/vps_exploration-c9b9c9b343a89e9a: examples/vps_exploration.rs

examples/vps_exploration.rs:
