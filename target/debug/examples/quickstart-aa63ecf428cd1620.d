/root/repo/target/debug/examples/quickstart-aa63ecf428cd1620.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-aa63ecf428cd1620: examples/quickstart.rs

examples/quickstart.rs:
