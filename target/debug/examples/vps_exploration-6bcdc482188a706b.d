/root/repo/target/debug/examples/vps_exploration-6bcdc482188a706b.d: examples/vps_exploration.rs

/root/repo/target/debug/examples/libvps_exploration-6bcdc482188a706b.rmeta: examples/vps_exploration.rs

examples/vps_exploration.rs:
