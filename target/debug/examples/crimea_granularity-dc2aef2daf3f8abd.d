/root/repo/target/debug/examples/crimea_granularity-dc2aef2daf3f8abd.d: examples/crimea_granularity.rs

/root/repo/target/debug/examples/libcrimea_granularity-dc2aef2daf3f8abd.rmeta: examples/crimea_granularity.rs

examples/crimea_granularity.rs:
