/root/repo/target/debug/examples/top10k_study-1bdea793ee9c31ce.d: examples/top10k_study.rs

/root/repo/target/debug/examples/libtop10k_study-1bdea793ee9c31ce.rmeta: examples/top10k_study.rs

examples/top10k_study.rs:
