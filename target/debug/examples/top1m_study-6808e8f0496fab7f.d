/root/repo/target/debug/examples/top1m_study-6808e8f0496fab7f.d: examples/top1m_study.rs

/root/repo/target/debug/examples/libtop1m_study-6808e8f0496fab7f.rmeta: examples/top1m_study.rs

examples/top1m_study.rs:
