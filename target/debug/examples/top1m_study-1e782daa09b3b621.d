/root/repo/target/debug/examples/top1m_study-1e782daa09b3b621.d: examples/top1m_study.rs

/root/repo/target/debug/examples/top1m_study-1e782daa09b3b621: examples/top1m_study.rs

examples/top1m_study.rs:
