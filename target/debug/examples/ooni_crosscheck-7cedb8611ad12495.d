/root/repo/target/debug/examples/ooni_crosscheck-7cedb8611ad12495.d: examples/ooni_crosscheck.rs

/root/repo/target/debug/examples/ooni_crosscheck-7cedb8611ad12495: examples/ooni_crosscheck.rs

examples/ooni_crosscheck.rs:
