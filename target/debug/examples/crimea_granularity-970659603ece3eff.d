/root/repo/target/debug/examples/crimea_granularity-970659603ece3eff.d: examples/crimea_granularity.rs

/root/repo/target/debug/examples/crimea_granularity-970659603ece3eff: examples/crimea_granularity.rs

examples/crimea_granularity.rs:
