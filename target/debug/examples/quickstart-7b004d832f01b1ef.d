/root/repo/target/debug/examples/quickstart-7b004d832f01b1ef.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-7b004d832f01b1ef.rmeta: examples/quickstart.rs

examples/quickstart.rs:
