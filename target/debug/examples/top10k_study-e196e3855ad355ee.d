/root/repo/target/debug/examples/top10k_study-e196e3855ad355ee.d: examples/top10k_study.rs

/root/repo/target/debug/examples/libtop10k_study-e196e3855ad355ee.rmeta: examples/top10k_study.rs

examples/top10k_study.rs:
