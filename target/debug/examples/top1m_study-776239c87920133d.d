/root/repo/target/debug/examples/top1m_study-776239c87920133d.d: examples/top1m_study.rs

/root/repo/target/debug/examples/libtop1m_study-776239c87920133d.rmeta: examples/top1m_study.rs

examples/top1m_study.rs:
