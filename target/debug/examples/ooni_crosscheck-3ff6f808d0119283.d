/root/repo/target/debug/examples/ooni_crosscheck-3ff6f808d0119283.d: examples/ooni_crosscheck.rs

/root/repo/target/debug/examples/libooni_crosscheck-3ff6f808d0119283.rmeta: examples/ooni_crosscheck.rs

examples/ooni_crosscheck.rs:
