/root/repo/target/debug/examples/top10k_study-9fffcaaa154e6928.d: examples/top10k_study.rs

/root/repo/target/debug/examples/top10k_study-9fffcaaa154e6928: examples/top10k_study.rs

examples/top10k_study.rs:
