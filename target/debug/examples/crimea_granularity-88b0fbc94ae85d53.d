/root/repo/target/debug/examples/crimea_granularity-88b0fbc94ae85d53.d: examples/crimea_granularity.rs

/root/repo/target/debug/examples/libcrimea_granularity-88b0fbc94ae85d53.rmeta: examples/crimea_granularity.rs

examples/crimea_granularity.rs:
