/root/repo/target/debug/examples/ooni_crosscheck-d6645a14583bab2a.d: examples/ooni_crosscheck.rs

/root/repo/target/debug/examples/libooni_crosscheck-d6645a14583bab2a.rmeta: examples/ooni_crosscheck.rs

examples/ooni_crosscheck.rs:
